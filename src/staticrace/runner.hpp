/**
 * @file
 * The staticrace sweep, soundness gate, and site annotator.
 *
 * runStaticrace() mirrors racecheck::runRacecheck cell for cell — the
 * same (algorithm x variant x input) grid from the same RunnerConfig —
 * but each cell runs ONE cheap fast-mode probe with a Recorder
 * installed instead of the interleaved detector, then feeds the
 * recorded summaries to the pairwise may-race analysis (analyze.hpp).
 *
 * evaluateSoundness() is the gate the analyzer ships under: run the
 * dynamic detector sweep over the SAME config and check, per cell, that
 * every dynamically observed race pair — keyed by (allocation,
 * unordered site-description pair, race kind) — appears in the static
 * may-set. A static analysis that misses a witnessed race is unsound
 * and the gate hard-fails. Precision is reported (static-only pairs =
 * predicted races, per cell), and enforced in one place where the
 * design guarantees it: race-free variants must produce zero may-race
 * pairs with a non-atomic side. APSP is exempt from the zero rule —
 * its tiled O(n^3) kernels index by (row, col) products that are not
 * affine in the global thread id, so its summaries widen to ⊤ and
 * produce known false positives (DESIGN.md §16) — but it still
 * participates in coverage.
 *
 * annotateSites() serves `bench/racecheck --list-sites`: the
 * populateSiteRegistry probe re-run with a Recorder attached, merging
 * per-site observations (access signatures, atomic order/scope,
 * barrier-phase interval) across every workload into one annotation
 * table keyed by SiteId.
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "racecheck/runner.hpp"
#include "staticrace/analyze.hpp"

namespace eclsim::staticrace {

/** Result of one static-analysis cell. */
struct StaticCellResult
{
    racecheck::RacecheckCell cell;
    u32 kernels = 0;       ///< distinct kernel names probed
    u32 sites = 0;         ///< (kernel, site) summaries recorded
    u32 affine_sites = 0;  ///< summaries with an exact affine model
    u32 top_sites = 0;     ///< summaries widened to ⊤
    u64 samples = 0;       ///< accesses observed by the probe
    /** Ranked may-race pairs (analyzeRecording order). */
    std::vector<MayRacePair> pairs;
};

/** Run a single cell's probe + analysis with an explicit engine seed. */
StaticCellResult runStaticraceCell(const racecheck::RunnerConfig& config,
                                   const racecheck::RacecheckCell& cell,
                                   u64 seed);

/** Progress sink; with jobs > 1 it is called under a lock, in
 *  completion (not cell) order. */
using StaticraceProgressFn = std::function<void(const StaticCellResult&)>;

/**
 * Run every cell of the config's grid (racecheckCells order). Calls
 * populateSiteRegistry() first, so site ids — and therefore summary
 * iteration order — are jobs-independent; results render byte-identical
 * for every config.jobs value.
 */
std::vector<StaticCellResult> runStaticrace(
    const racecheck::RunnerConfig& config,
    const StaticraceProgressFn& progress = {});

/** Per-cell coverage accounting of the soundness gate. */
struct CoverageRow
{
    std::string cell;
    u64 dynamic_races = 0;   ///< dynamic race site pairs reported
    u64 covered = 0;         ///< of those, present in the static may-set
    u64 static_pairs = 0;    ///< static may-race pairs emitted
    u64 predicted_only = 0;  ///< static pairs with no dynamic witness
    /** Uncovered dynamic reports (describe() strings); non-empty = the
     *  gate failed on this cell. */
    std::vector<std::string> misses;
};

/** Soundness-gate verdict. */
struct SoundnessResult
{
    bool pass = true;
    std::vector<CoverageRow> rows;  ///< one per cell, cell order
    std::vector<std::string> failures;
};

/**
 * Apply the soundness gate: statics and dynamics must come from the
 * same config (cell-for-cell aligned, as runStaticrace/runRacecheck
 * produce). Every dynamic race must be statically covered; race-free
 * variants (except APSP) must carry zero non-atomic may-race pairs.
 */
SoundnessResult evaluateSoundness(
    const racecheck::RunnerConfig& config,
    const std::vector<StaticCellResult>& statics,
    const std::vector<racecheck::CellResult>& dynamics);

/** Per-cell may-race pair table (the sweep's CSV). */
TextTable makePairTable(const std::vector<StaticCellResult>& results);

/** Per-cell probe/summary statistics. */
TextTable makeStaticSummary(const std::vector<StaticCellResult>& results);

/** Per-cell static-vs-dynamic coverage table. */
TextTable makeCoverageTable(const SoundnessResult& soundness);

/**
 * Machine-readable export: deterministic JSON, byte-identical for every
 * --jobs value, one cell object per line; includes the coverage rows
 * when a soundness evaluation ran (pass soundness = nullptr otherwise).
 */
std::string renderStaticraceJson(
    const std::vector<StaticCellResult>& results,
    const SoundnessResult* soundness = nullptr);

/** Merged dynamic observation of one site across the annotation probe
 *  (see annotateSites). */
struct SiteAnnotation
{
    /** Distinct accessSigName renderings observed (sorted). */
    std::set<std::string> accesses;
    bool any_atomic = false;
    u8 orders_mask = 0;  ///< bit per simt::MemoryOrder, atomics only
    simt::Scope min_scope = simt::Scope::kSystem;
    u32 epoch_min = ~u32{0};
    u32 epoch_max = 0;
    u64 samples = 0;
};

/**
 * Observe every instrumented kernel once (the populateSiteRegistry
 * probe, re-run with a Recorder) and merge what each site did:
 * signatures, atomic orders/scopes, barrier-phase intervals.
 * Deterministic and serial; interns the full registry as a side effect.
 */
std::map<racecheck::SiteId, SiteAnnotation> annotateSites();

/**
 * The `bench/racecheck --list-sites` table: makeSiteListTable's five
 * identity columns plus Access / Orders / Scope / Epochs from
 * annotateSites(). Sorted by (file, line, label); independent of
 * interning order.
 */
TextTable makeAnnotatedSiteTable();

/** JSON rendering of makeAnnotatedSiteTable (one site object per
 *  line, same sort). */
std::string renderSiteListJson();

}  // namespace eclsim::staticrace
