#include "staticrace/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <mutex>
#include <tuple>

#include "algos/apsp.hpp"
#include "chaos/oracle.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/input_catalog.hpp"
#include "simt/engine.hpp"

namespace eclsim::staticrace {

namespace {

const char*
kindsLabel(bool rw, bool ww)
{
    if (rw && ww)
        return "R/W+W/W";
    return ww ? "W/W" : "R/W";
}

/** Minimal JSON string quoting (descriptions are plain ASCII). */
std::string
jsonQuote(const std::string& text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

const char*
jsonBool(bool value)
{
    return value ? "true" : "false";
}

}  // namespace

StaticCellResult
runStaticraceCell(const racecheck::RunnerConfig& config,
                  const racecheck::RacecheckCell& cell, u64 seed)
{
    StaticCellResult out;
    out.cell = cell;

    // Same graph selection as runRacecheckCell: the probe must execute
    // the exact workload whose dynamic race set the gate compares
    // against.
    graph::CsrGraph apsp_graph;
    if (cell.apsp) {
        apsp_graph = graph::withSyntheticWeights(
            graph::makeRandomUniform(config.apsp_vertices,
                                     4ull * config.apsp_vertices, 0xa9),
            50, 0xa9);
    }
    auto& cache = graph::InputCatalog::shared();
    const bool weighted = cell.algo == harness::Algo::kMst;
    graph::GraphPtr cached;  // pins the cache slot for the cell
    if (!cell.apsp)
        cached = weighted
                     ? cache.getWeighted(cell.input, config.graph_divisor)
                     : cache.get(cell.input, config.graph_divisor);
    const graph::CsrGraph& graph = cell.apsp ? apsp_graph : *cached;

    // The probe runs FAST mode: summaries only need one witnessed
    // address stream per site, and the fitter/widening make the
    // downstream analysis schedule-independent (DESIGN.md §16). No
    // oracle check — the probe's output is its access trace.
    Recorder recorder;
    simt::EngineOptions options;
    options.mode = simt::ExecMode::kFast;
    options.detect_races = false;
    options.shuffle_blocks = true;
    options.seed = seed;
    options.memory.cache_divisor = config.cache_divisor;
    options.site_overrides = config.site_overrides;
    options.observer = &recorder;

    simt::DeviceMemory memory;
    simt::Engine engine(simt::findGpu(config.gpu), memory, options);

    if (cell.apsp)
        algos::runApsp(engine, graph);
    else
        chaos::runChecked(engine, graph, cell.algo, cell.variant,
                          /*check_oracle=*/false);

    recorder.finalize(memory);
    out.kernels = static_cast<u32>(recorder.kernels().size());
    for (const KernelGroup& group : recorder.kernels()) {
        for (const auto& [site, summary] : group.sites) {
            ++out.sites;
            if (summary.model.affine)
                ++out.affine_sites;
            else
                ++out.top_sites;
        }
    }
    out.samples = recorder.totalSamples();
    out.pairs = analyzeRecording(recorder);
    return out;
}

std::vector<StaticCellResult>
runStaticrace(const racecheck::RunnerConfig& config,
              const StaticraceProgressFn& progress)
{
    // Pin site-id assignment before any cell runs: summary maps iterate
    // in id order, and ids must not depend on the worker schedule.
    racecheck::populateSiteRegistry();

    const auto cells = racecheck::racecheckCells(config);
    std::vector<StaticCellResult> out(cells.size());
    const u32 jobs = config.jobs == 0
                         ? core::ThreadPool::defaultConcurrency()
                         : config.jobs;

    if (jobs <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out[i] = runStaticraceCell(config, cells[i],
                                       harness::cellSeed(config.seed, i));
            if (progress)
                progress(out[i]);
        }
        return out;
    }

    // PR-2 sharding contract: per-cell seeds from the stable cell index,
    // results placed by index, so every --jobs value renders identically.
    std::mutex sink_mutex;
    core::ThreadPool pool(
        static_cast<u32>(std::min<size_t>(jobs, cells.size())));
    std::vector<std::future<void>> done;
    done.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        done.push_back(pool.submit([&, i] {
            StaticCellResult result = runStaticraceCell(
                config, cells[i], harness::cellSeed(config.seed, i));
            if (progress) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                progress(result);
            }
            out[i] = std::move(result);
        }));
    }
    for (auto& future : done)
        future.get();
    return out;
}

namespace {

/** Coverage key of one conflict: (allocation, ordered desc pair, kind
 *  initial 'R' or 'W'). Descriptions, not ids: interning order varies
 *  between processes, renderings do not. */
using ConflictKey = std::tuple<std::string, std::string, std::string, char>;

ConflictKey
dynamicKey(const racecheck::RaceReport& report)
{
    auto& sites = racecheck::SiteRegistry::instance();
    std::string a = sites.describe(report.site_a);
    std::string b = sites.describe(report.site_b);
    if (b < a)
        std::swap(a, b);
    const char kind =
        report.kind == racecheck::RaceKind::kWriteWrite ? 'W' : 'R';
    return {report.allocation, std::move(a), std::move(b), kind};
}

void
staticKeys(const MayRacePair& pair, std::vector<ConflictKey>& out)
{
    // desc_a <= desc_b already holds (MayRacePair invariant).
    if (pair.rw)
        out.push_back({pair.allocation, pair.desc_a, pair.desc_b, 'R'});
    if (pair.ww)
        out.push_back({pair.allocation, pair.desc_a, pair.desc_b, 'W'});
}

}  // namespace

SoundnessResult
evaluateSoundness(const racecheck::RunnerConfig& config,
                  const std::vector<StaticCellResult>& statics,
                  const std::vector<racecheck::CellResult>& dynamics)
{
    const auto cells = racecheck::racecheckCells(config);
    ECLSIM_ASSERT(statics.size() == cells.size() &&
                      dynamics.size() == cells.size(),
                  "soundness gate needs cell-aligned sweeps of one config");

    SoundnessResult out;
    auto fail = [&out](std::string why) {
        out.pass = false;
        out.failures.push_back(std::move(why));
    };

    for (size_t i = 0; i < cells.size(); ++i) {
        const StaticCellResult& s = statics[i];
        const racecheck::CellResult& d = dynamics[i];
        const std::string name = racecheck::cellName(cells[i]);

        CoverageRow row;
        row.cell = name;
        row.static_pairs = s.pairs.size();

        std::set<ConflictKey> static_keys;
        for (const MayRacePair& pair : s.pairs) {
            std::vector<ConflictKey> keys;
            staticKeys(pair, keys);
            static_keys.insert(keys.begin(), keys.end());
        }

        // Soundness: every dynamic race must be in the static may-set.
        std::set<ConflictKey> dynamic_keys;
        for (const racecheck::ClassifiedReport& race : d.races) {
            ++row.dynamic_races;
            const ConflictKey key = dynamicKey(race.report);
            dynamic_keys.insert(key);
            if (static_keys.count(key)) {
                ++row.covered;
            } else {
                row.misses.push_back(race.report.describe());
                fail(name + ": statically uncovered dynamic race: " +
                     race.report.describe());
            }
        }

        // Precision accounting: static pairs with no dynamic witness.
        u64 non_atomic_pairs = 0;
        const MayRacePair* non_atomic_example = nullptr;
        for (const MayRacePair& pair : s.pairs) {
            std::vector<ConflictKey> keys;
            staticKeys(pair, keys);
            bool witnessed = false;
            for (const ConflictKey& key : keys)
                witnessed = witnessed || dynamic_keys.count(key) > 0;
            if (!witnessed)
                ++row.predicted_only;
            if (pair.non_atomic_side && !pair.declared_benign) {
                ++non_atomic_pairs;
                if (non_atomic_example == nullptr)
                    non_atomic_example = &pair;
            }
        }

        // Precision, enforced where the design guarantees it: converted
        // codes must analyze clean of non-atomic may-races, except
        // pairs whose every plain side declares a benign-race
        // expectation (ECL_SITE_AS) — those are audited claims the
        // chaos classifier validates dynamically. APSP's tiled kernels
        // widen to ⊤ by construction (file comment) and are exempt;
        // they still count toward coverage above.
        if (!cells[i].apsp &&
            cells[i].variant == algos::Variant::kRaceFree &&
            non_atomic_pairs > 0) {
            fail(name + ": " + std::to_string(non_atomic_pairs) +
                 " non-atomic may-race pair(s) predicted on race-free "
                 "code, e.g. " +
                 non_atomic_example->describe());
        }

        out.rows.push_back(std::move(row));
    }
    return out;
}

TextTable
makePairTable(const std::vector<StaticCellResult>& results)
{
    TextTable table({"Cell", "Kernel", "Allocation", "Kind", "SiteA",
                     "AccessA", "SiteB", "AccessB", "NonAtomic",
                     "Benign", "Overlap", "Why"});
    for (const StaticCellResult& r : results) {
        for (const MayRacePair& pair : r.pairs) {
            table.addRow({racecheck::cellName(r.cell), pair.kernel,
                          pair.allocation,
                          kindsLabel(pair.rw, pair.ww), pair.desc_a,
                          pair.access_a, pair.desc_b, pair.access_b,
                          pair.non_atomic_side ? "yes" : "no",
                          pair.declared_benign ? "yes" : "no",
                          std::to_string(pair.overlap_bytes), pair.why});
        }
    }
    return table;
}

TextTable
makeStaticSummary(const std::vector<StaticCellResult>& results)
{
    TextTable table({"Cell", "Kernels", "Sites", "Affine", "Top",
                     "Samples", "Pairs", "NonAtomicPairs"});
    for (const StaticCellResult& r : results) {
        u64 non_atomic = 0;
        for (const MayRacePair& pair : r.pairs)
            non_atomic += pair.non_atomic_side ? 1 : 0;
        table.addRow({racecheck::cellName(r.cell),
                      std::to_string(r.kernels), std::to_string(r.sites),
                      std::to_string(r.affine_sites),
                      std::to_string(r.top_sites),
                      std::to_string(r.samples),
                      std::to_string(r.pairs.size()),
                      std::to_string(non_atomic)});
    }
    return table;
}

TextTable
makeCoverageTable(const SoundnessResult& soundness)
{
    TextTable table({"Cell", "DynamicRaces", "Covered", "StaticPairs",
                     "PredictedOnly", "Misses"});
    for (const CoverageRow& row : soundness.rows) {
        std::string misses;
        for (const std::string& miss : row.misses) {
            if (!misses.empty())
                misses += "; ";
            misses += miss;
        }
        if (misses.empty())
            misses = "-";
        table.addRow({row.cell, std::to_string(row.dynamic_races),
                      std::to_string(row.covered),
                      std::to_string(row.static_pairs),
                      std::to_string(row.predicted_only), misses});
    }
    return table;
}

std::string
renderStaticraceJson(const std::vector<StaticCellResult>& results,
                     const SoundnessResult* soundness)
{
    std::string out = "{\"schema\":1,\"cells\":[\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const StaticCellResult& r = results[i];
        out += "{\"cell\":" + jsonQuote(racecheck::cellName(r.cell));
        out += ",\"kernels\":" + std::to_string(r.kernels);
        out += ",\"sites\":" + std::to_string(r.sites);
        out += ",\"affine\":" + std::to_string(r.affine_sites);
        out += ",\"top\":" + std::to_string(r.top_sites);
        out += ",\"samples\":" + std::to_string(r.samples);
        out += ",\"pairs\":[";
        for (size_t j = 0; j < r.pairs.size(); ++j) {
            const MayRacePair& pair = r.pairs[j];
            if (j)
                out += ',';
            out += "{\"kernel\":" + jsonQuote(pair.kernel);
            out += ",\"allocation\":" + jsonQuote(pair.allocation);
            out += ",\"kind\":" +
                   jsonQuote(kindsLabel(pair.rw, pair.ww));
            out += ",\"site_a\":" + jsonQuote(pair.desc_a);
            out += ",\"access_a\":" + jsonQuote(pair.access_a);
            out += ",\"site_b\":" + jsonQuote(pair.desc_b);
            out += ",\"access_b\":" + jsonQuote(pair.access_b);
            out += ",\"non_atomic_side\":";
            out += jsonBool(pair.non_atomic_side);
            out += ",\"declared_benign\":";
            out += jsonBool(pair.declared_benign);
            out += ",\"overlap_bytes\":" +
                   std::to_string(pair.overlap_bytes);
            out += ",\"why\":" + jsonQuote(pair.why);
            out += '}';
        }
        out += "]}";
        out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "]";
    if (soundness != nullptr) {
        out += ",\"soundness\":{\"pass\":";
        out += jsonBool(soundness->pass);
        out += ",\"rows\":[\n";
        for (size_t i = 0; i < soundness->rows.size(); ++i) {
            const CoverageRow& row = soundness->rows[i];
            out += "{\"cell\":" + jsonQuote(row.cell);
            out += ",\"dynamic_races\":" +
                   std::to_string(row.dynamic_races);
            out += ",\"covered\":" + std::to_string(row.covered);
            out += ",\"static_pairs\":" +
                   std::to_string(row.static_pairs);
            out += ",\"predicted_only\":" +
                   std::to_string(row.predicted_only);
            out += ",\"misses\":[";
            for (size_t j = 0; j < row.misses.size(); ++j) {
                if (j)
                    out += ',';
                out += jsonQuote(row.misses[j]);
            }
            out += "]}";
            out += i + 1 < soundness->rows.size() ? ",\n" : "\n";
        }
        out += "],\"failures\":[";
        for (size_t i = 0; i < soundness->failures.size(); ++i) {
            if (i)
                out += ',';
            out += jsonQuote(soundness->failures[i]);
        }
        out += "]}";
    }
    out += "}\n";
    return out;
}

// --- Site annotation (bench/racecheck --list-sites) -----------------------

namespace {

void
mergeAnnotations(const Recorder& recorder,
                 std::map<racecheck::SiteId, SiteAnnotation>& out)
{
    for (const KernelGroup& group : recorder.kernels()) {
        for (const auto& [site, summary] : group.sites) {
            if (site == racecheck::kUnknownSite)
                continue;
            SiteAnnotation& note = out[site];
            note.accesses.insert(racecheck::accessSigName(summary.sig));
            if (summary.multi_sig)
                note.accesses.insert("(+varied)");
            if (summary.orders_mask != 0) {
                note.any_atomic = true;
                note.orders_mask |= summary.orders_mask;
                note.min_scope =
                    std::min(note.min_scope, summary.min_scope);
            }
            note.epoch_min = std::min(note.epoch_min, summary.epoch_min);
            note.epoch_max = std::max(note.epoch_max, summary.epoch_max);
            note.samples += summary.samples;
        }
    }
}

}  // namespace

std::map<racecheck::SiteId, SiteAnnotation>
annotateSites()
{
    racecheck::populateSiteRegistry();

    // The populate pass's graphs: tiny, fixed seeds, every kernel runs.
    const graph::CsrGraph undirected =
        graph::makeRandomUniform(64, 256, 0x51);
    const graph::CsrGraph weighted =
        graph::withSyntheticWeights(undirected, 50, 0x51);
    const graph::CsrGraph directed =
        graph::makeDirectedPowerLaw(6, 256, 0.3, 0x51);
    const graph::CsrGraph apsp_graph = graph::withSyntheticWeights(
        graph::makeRandomUniform(24, 96, 0x51), 50, 0x51);

    std::map<racecheck::SiteId, SiteAnnotation> notes;
    auto run = [&notes](const graph::CsrGraph& g, bool apsp,
                        harness::Algo algo, algos::Variant variant) {
        Recorder recorder;
        simt::EngineOptions options;
        options.mode = simt::ExecMode::kFast;
        options.detect_races = false;
        options.seed = 0x51;
        options.observer = &recorder;
        simt::DeviceMemory memory;
        simt::Engine engine(simt::titanV(), memory, options);
        if (apsp)
            algos::runApsp(engine, g);
        else
            chaos::runChecked(engine, g, algo, variant,
                              /*check_oracle=*/false);
        recorder.finalize(memory);
        mergeAnnotations(recorder, notes);
    };

    for (harness::Algo algo :
         {harness::Algo::kCc, harness::Algo::kGc, harness::Algo::kMis,
          harness::Algo::kMst, harness::Algo::kScc, harness::Algo::kPr,
          harness::Algo::kBfs, harness::Algo::kWcc}) {
        const graph::CsrGraph& g =
            algos::algoNeedsDirected(algo)
                ? directed
                : (algo == harness::Algo::kMst ? weighted : undirected);
        for (algos::Variant variant :
             {algos::Variant::kBaseline, algos::Variant::kRaceFree})
            run(g, false, algo, variant);
    }
    run(apsp_graph, true, harness::Algo::kCc, algos::Variant::kBaseline);
    return notes;
}

namespace {

struct AnnotatedRow
{
    racecheck::Site site;
    std::string access, orders, scope, epochs;
};

std::vector<AnnotatedRow>
annotatedRows()
{
    const auto notes = annotateSites();
    std::vector<AnnotatedRow> rows;
    for (const racecheck::Site& site :
         racecheck::SiteRegistry::instance().snapshot()) {
        AnnotatedRow row;
        row.site = site;
        const auto it = notes.find(site.id);
        if (it == notes.end()) {
            // Interned but never executed by the annotation probe
            // (should not happen: the probe runs every kernel).
            row.access = row.orders = row.scope = row.epochs = "-";
        } else {
            const SiteAnnotation& note = it->second;
            for (const std::string& sig : note.accesses) {
                if (!row.access.empty())
                    row.access += "+";
                row.access += sig;
            }
            if (note.any_atomic) {
                for (u8 bit = 0; bit < 4; ++bit) {
                    if ((note.orders_mask & (1u << bit)) == 0)
                        continue;
                    if (!row.orders.empty())
                        row.orders += "+";
                    row.orders += memoryOrderName(
                        static_cast<simt::MemoryOrder>(bit));
                }
                row.scope = scopeName(note.min_scope);
            } else {
                row.orders = "-";
                row.scope = "-";
            }
            row.epochs = "[" + std::to_string(note.epoch_min) + "," +
                         std::to_string(note.epoch_max) + "]";
        }
        rows.push_back(std::move(row));
    }
    // The makeSiteListTable sort: source position, not interning order.
    std::sort(rows.begin(), rows.end(),
              [](const AnnotatedRow& a, const AnnotatedRow& b) {
                  return std::tie(a.site.file, a.site.line,
                                  a.site.label) <
                         std::tie(b.site.file, b.site.line, b.site.label);
              });
    return rows;
}

}  // namespace

TextTable
makeAnnotatedSiteTable()
{
    TextTable table({"Id", "File", "Line", "Label", "Expectation",
                     "Access", "Orders", "Scope", "Epochs"});
    for (const AnnotatedRow& row : annotatedRows()) {
        table.addRow({std::to_string(row.site.id), row.site.file,
                      std::to_string(row.site.line), row.site.label,
                      racecheck::expectationName(row.site.expect),
                      row.access, row.orders, row.scope, row.epochs});
    }
    return table;
}

std::string
renderSiteListJson()
{
    std::string out = "{\"schema\":1,\"sites\":[\n";
    const auto rows = annotatedRows();
    for (size_t i = 0; i < rows.size(); ++i) {
        const AnnotatedRow& row = rows[i];
        out += "{\"id\":" + std::to_string(row.site.id);
        out += ",\"file\":" + jsonQuote(row.site.file);
        out += ",\"line\":" + std::to_string(row.site.line);
        out += ",\"label\":" + jsonQuote(row.site.label);
        out += ",\"expectation\":" +
               jsonQuote(racecheck::expectationName(row.site.expect));
        out += ",\"access\":" + jsonQuote(row.access);
        out += ",\"orders\":" + jsonQuote(row.orders);
        out += ",\"scope\":" + jsonQuote(row.scope);
        out += ",\"epochs\":" + jsonQuote(row.epochs);
        out += '}';
        out += i + 1 < rows.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

}  // namespace eclsim::staticrace
