/**
 * @file
 * The long-lived simulation service.
 *
 * A Service turns the one-shot experiment harness into a daemon-grade
 * request processor: clients submit normalized Requests (in-process
 * through a ServiceHandle, or over TCP through serve::Server) and get
 * back deterministic, memoizable responses.
 *
 * Pipeline per request:
 *   1. Memoization — the canonical RequestKey probes the bounded
 *      ResultCache; a hit replays the stored result bytes verbatim.
 *   2. Single-flight coalescing — concurrent misses on the same key
 *      share one execution: the first caller computes, the rest wait on
 *      its shared_future and reply "coalesced".
 *   3. Admission control — the computing caller submits the cell to the
 *      ThreadPool with ThreadPool::trySubmit bounded by queue_limit;
 *      when the pending queue is full the request is REJECTED with an
 *      "overloaded" error instead of queueing unboundedly. Max in-flight
 *      executions = pool workers (jobs).
 *   4. Execution — one harness cell (measureSeeded) with the request's
 *      own seed as the deterministic seed base. Because the seed derives
 *      from the request and never from the schedule, a response computed
 *      under 8-way concurrency is byte-identical to the same request
 *      served by a fresh single-threaded daemon.
 *
 * Input graphs come from a service-owned graph::InputCatalog (shared
 * across all clients, capacity-capped so the daemon cannot accumulate
 * every graph it ever served). Profiling: every executed cell records a
 * span on a per-worker "serve/w<i>" track plus serve counters and a
 * queue-depth counter series in the embedded TraceSession.
 *
 * drain() is the graceful-shutdown path: new work is refused with a
 * "draining" error, in-flight executions complete and are delivered to
 * their waiting clients, then the pool is torn down. The destructor
 * drains implicitly.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_pool.hpp"
#include "graph/input_catalog.hpp"
#include "prof/trace.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"

namespace eclsim::serve {

/** Service configuration. */
struct ServeOptions
{
    /** Pool workers = max concurrently executing cells.
     *  0 = one per hardware thread. */
    u32 jobs = 0;
    /** Admission bound: pending (queued, not yet running) executions
     *  past this are rejected with "overloaded". */
    size_t queue_limit = 64;
    /** Result-cache LRU bound (entries). */
    size_t cache_entries = 4096;
    /** Input-catalog residency cap in bytes; 0 = unbounded. */
    u64 catalog_capacity_bytes = 256ull << 20;
};

/** Point-in-time service statistics. */
struct ServiceStats
{
    u64 requests = 0;    ///< every call, including malformed lines
    u64 ok = 0;
    u64 cache_hits = 0;  ///< replayed from the result cache
    u64 coalesced = 0;   ///< waited on a concurrent identical request
    u64 executed = 0;    ///< actually simulated
    u64 rejected = 0;    ///< overloaded (admission control)
    u64 drain_rejected = 0;  ///< refused because draining
    u64 malformed = 0;
    u64 queue_peak = 0;  ///< max pending executions observed
    /** Completed-ok request latencies (microseconds). */
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;

    /** cache_hits + coalesced over all disposed simulate requests. */
    double hitRate() const;
};

/** The long-lived simulation service (see file comment). */
class Service
{
  public:
    explicit Service(const ServeOptions& options = {});

    /** Drains (completes in-flight work) before tearing down. */
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /** Serve one normalized request (blocks until disposed). */
    Response call(const Request& request);

    /** Serve one wire line: parse, normalize, dispatch, encode. */
    std::string callLine(const std::string& line);

    /**
     * Graceful shutdown: refuse new work ("draining"), complete and
     * deliver all in-flight executions, then stop the pool. Idempotent;
     * the service stays queryable (every later request is refused).
     */
    void drain();

    bool draining() const;

    ServiceStats stats() const;

    /** Embedded profiling sink (serve counters, per-worker spans). */
    prof::TraceSession& session() { return session_; }

    /**
     * Fold the gauge-style totals (queue peak, result-cache and input-
     * catalog accounting) into the session counters. Call once, at
     * export time — counters accumulate.
     */
    void publishGaugeCounters();

    graph::InputCatalog& catalog() { return catalog_; }
    const ResultCache& cache() const { return cache_; }

  private:
    /** A single-flight slot: the owner fulfills, coalescers wait.
     *  A null payload means the owner was rejected by admission. */
    struct Flight
    {
        std::promise<std::shared_ptr<const std::string>> promise;
        std::shared_future<std::shared_ptr<const std::string>> future;
    };

    Response simulate(const Request& request);
    std::string executeCell(const Request& request);
    Response okResponse(const Request& request, const RequestKey& key,
                        const char* disposition, std::string result);
    void bump(const char* counter, u64 delta = 1);
    void recordLatency(double micros);
    u64 wallMicros() const;

    const ServeOptions options_;
    graph::InputCatalog catalog_;
    ResultCache cache_;
    prof::TraceSession session_;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    std::unique_ptr<core::ThreadPool> pool_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
    std::vector<double> latencies_us_;
    u64 queue_peak_ = 0;
    bool draining_ = false;
    std::chrono::steady_clock::time_point start_;
};

/** Lightweight client face of an in-process Service (no sockets). */
class ServiceHandle
{
  public:
    explicit ServiceHandle(Service& service) : service_(&service) {}

    /** Typed call. */
    Response call(const Request& request) { return service_->call(request); }

    /** Wire-line call (exactly what a TCP client observes, minus
     *  framing). */
    std::string
    call(const std::string& line)
    {
        return service_->callLine(line);
    }

  private:
    Service* service_;
};

}  // namespace eclsim::serve
