/**
 * @file
 * Minimal flat-JSON codec for the serve wire protocol.
 *
 * The protocol is line-delimited JSON: one request object per line, one
 * response object per line. Objects are deliberately FLAT — every value
 * is a string, a number, or a boolean; nested objects and arrays are
 * rejected as malformed on input (responses embed their nested "result"
 * object as a pre-rendered raw fragment instead of a tree). This keeps
 * the parser small, auditable, and byte-deterministic, which matters
 * because response byte-identity is part of the service's contract.
 *
 * The writer side is a handful of helpers (quoteJson, jsonNumber) used
 * by the canonical encoders in request.cpp; they format identically for
 * identical values on every run, so memoized and recomputed responses
 * compare equal byte-for-byte.
 */
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/types.hpp"

namespace eclsim::serve {

/** One parsed flat JSON object (field -> typed value). */
struct JsonObject
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    std::map<std::string, bool> bools;

    bool
    has(const std::string& key) const
    {
        return strings.count(key) || numbers.count(key) ||
               bools.count(key);
    }

    /** String field, or fallback when absent. */
    std::string getString(const std::string& key,
                          const std::string& fallback) const;

    /** Numeric field, or fallback when absent. */
    double getNumber(const std::string& key, double fallback) const;
};

/**
 * Parse one line as a flat JSON object. Returns std::nullopt on any
 * syntax error, non-flat value, duplicate key, or trailing garbage,
 * with a human-readable reason in *error.
 */
std::optional<JsonObject> parseFlatObject(std::string_view line,
                                          std::string* error);

/** Quote and escape a string for JSON output. */
std::string quoteJson(std::string_view s);

/** Shortest-faithful decimal rendering of a double ("%.17g"). */
std::string jsonNumber(double value);

}  // namespace eclsim::serve
