#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

#include "core/logging.hpp"

namespace eclsim::serve {

ResultCache::ResultCache(size_t max_entries)
    : max_entries_(std::max<size_t>(1, max_entries))
{
}

std::optional<std::string>
ResultCache::get(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.result;
}

void
ResultCache::put(const std::string& key, std::string result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second.result = std::move(result);
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(result), lru_.begin()});
    while (entries_.size() > max_entries_) {
        const std::string& victim = lru_.back();
        entries_.erase(victim);
        lru_.pop_back();
        ++evictions_;
    }
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

u64
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

u64
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

u64
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

}  // namespace eclsim::serve
