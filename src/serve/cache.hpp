/**
 * @file
 * Thread-safe LRU cache of rendered result fragments.
 *
 * The serve layer's memoization exploits the per-cell seeding property
 * (PR 2): a request fully determines its Measurement, so the rendered
 * result bytes can be stored and replayed verbatim — a cache hit is
 * byte-identical to a recomputation by construction.
 *
 * Entries are keyed by RequestKey::canonical and bounded by a
 * configurable entry count; insertion past the bound evicts the least
 * recently used entry (a get refreshes recency). Hit/miss/eviction
 * totals feed the serve prof counters.
 *
 * Single-flight coalescing of concurrent misses lives in the Service
 * (it interacts with admission control); this class is a plain bounded
 * map.
 */
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/types.hpp"

namespace eclsim::serve {

/** Bounded thread-safe string->string LRU map (see file comment). */
class ResultCache
{
  public:
    /** Cache holding at most `max_entries` results (>= 1). */
    explicit ResultCache(size_t max_entries);

    /** The cached result for a key, refreshing its recency. */
    std::optional<std::string> get(const std::string& key);

    /** Insert (or overwrite) a result, evicting LRU entries past the
     *  bound. */
    void put(const std::string& key, std::string result);

    size_t size() const;
    size_t maxEntries() const { return max_entries_; }
    u64 hits() const;
    u64 misses() const;
    u64 evictions() const;

  private:
    struct Entry
    {
        std::string result;
        std::list<std::string>::iterator lru_it;  ///< position in lru_
    };

    mutable std::mutex mutex_;
    size_t max_entries_;
    /** Most-recently-used at the front; values are map keys. */
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
};

}  // namespace eclsim::serve
