/**
 * @file
 * Serve-protocol requests, canonical request keys, and responses.
 *
 * A request names one simulation cell: (graph, algo, gpu, seed, reps,
 * divisor, cache_divisor) — exactly the coordinates of a harness
 * measurement. Parsing NORMALIZES the request: defaults are filled in,
 * algorithm and GPU names are canonicalized (case/spacing-insensitive
 * aliases map onto one spelling), and the algorithm/graph pairing is
 * validated against the catalog (SCC/PR/BFS need a directed input,
 * everything else an undirected one — harness::algoNeedsDirected).
 *
 * RequestKey is a stable digest of the normalized request. Two request
 * lines that differ only in field order, formatting, default omission,
 * or name spelling produce the SAME key — that is what makes the result
 * cache's memoization sound. The canonical() string is the cache map
 * key (collision-free by construction); hash() is a 64-bit convenience
 * digest used for logging and the wire "key" field.
 *
 * Responses carry the volatile envelope (client id, cache disposition)
 * separate from the deterministic "result" fragment: the result bytes
 * of a request are identical whether computed, memoized, or recomputed
 * by a different daemon — the loadgen's determinism gate compares them
 * byte-for-byte.
 */
#pragma once

#include <optional>
#include <string>

#include "core/types.hpp"
#include "harness/experiment.hpp"
#include "serve/json.hpp"

namespace eclsim::serve {

/** Request defaults (also the protocol's documented defaults). */
inline constexpr u32 kDefaultReps = 3;
inline constexpr u32 kDefaultDivisor = 512;
inline constexpr u32 kDefaultCacheDivisor = 16;
inline constexpr u64 kDefaultSeed = 12345;
inline constexpr const char* kDefaultGpu = "Titan V";

/** One normalized simulation request. */
struct Request
{
    std::string id;          ///< client-chosen echo tag (not keyed)
    std::string op = "simulate";  ///< "simulate" | "ping" | "stats"
    std::string graph;       ///< catalog input name
    harness::Algo algo = harness::Algo::kCc;
    std::string gpu = kDefaultGpu;  ///< canonical GpuSpec name
    u64 seed = kDefaultSeed;
    u32 reps = kDefaultReps;
    u32 divisor = kDefaultDivisor;
    u32 cache_divisor = kDefaultCacheDivisor;
};

/** Stable identity of a normalized request (see file comment). */
struct RequestKey
{
    std::string canonical;  ///< collision-free cache key
    u64 digest = 0;         ///< 64-bit display/wire digest

    friend bool
    operator==(const RequestKey& a, const RequestKey& b)
    {
        return a.canonical == b.canonical;
    }
};

/** The key of a normalized request. */
RequestKey requestKey(const Request& request);

/**
 * Parse + normalize one wire line. Returns std::nullopt with a reason
 * in *error for malformed JSON, unknown fields values, out-of-range
 * numbers, unknown graph/algo/gpu, or an algo/graph direction mismatch.
 */
std::optional<Request> parseRequest(const std::string& line,
                                    std::string* error);

/** How a request was disposed of. */
enum class ResponseStatus : u8 {
    kOk,
    kMalformed,   ///< unparseable or invalid request
    kOverloaded,  ///< admission control rejected it
    kDraining,    ///< daemon is shutting down
};

/** Wire name of a response status ("ok", "malformed", ...). */
const char* responseStatusName(ResponseStatus status);

/** One response (envelope + deterministic result fragment). */
struct Response
{
    std::string id;
    ResponseStatus status = ResponseStatus::kOk;
    std::string error;        ///< reason, for non-ok statuses
    std::string key;          ///< hex digest of the request key
    std::string cache;        ///< "hit" | "miss" | "coalesced"
    std::string result_json;  ///< canonical "result" object fragment

    /** Render the single-line wire form. */
    std::string encode() const;
};

/** The canonical deterministic result fragment of one measurement. */
std::string encodeResult(const Request& request,
                         const harness::Measurement& m);

/**
 * Extract the raw "result":{...} fragment from an encoded response
 * line; empty when absent. The loadgen uses this to byte-compare
 * responses across daemons without parsing nested JSON.
 */
std::string extractResultFragment(const std::string& response_line);

}  // namespace eclsim::serve
