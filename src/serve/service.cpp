#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "core/stats.hpp"
#include "simt/gpu_spec.hpp"

namespace eclsim::serve {

namespace {

std::string
hexDigest(u64 v)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

}  // namespace

double
ServiceStats::hitRate() const
{
    const u64 disposed = cache_hits + coalesced + executed;
    return disposed == 0
               ? 0.0
               : static_cast<double>(cache_hits + coalesced) /
                     static_cast<double>(disposed);
}

Service::Service(const ServeOptions& options)
    : options_(options),
      cache_(options.cache_entries),
      pool_(std::make_unique<core::ThreadPool>(options.jobs)),
      start_(std::chrono::steady_clock::now())
{
    catalog_.setCapacityBytes(options.catalog_capacity_bytes);
}

Service::~Service()
{
    drain();
}

u64
Service::wallMicros() const
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

void
Service::bump(const char* counter, u64 delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& counters = session_.counters();
    counters.add(counters.id(counter), delta);
}

void
Service::recordLatency(double micros)
{
    std::lock_guard<std::mutex> lock(mutex_);
    latencies_us_.push_back(micros);
}

std::string
Service::callLine(const std::string& line)
{
    std::string error;
    const auto request = parseRequest(line, &error);
    if (!request) {
        bump("serve/requests");
        bump("serve/malformed");
        Response response;
        response.status = ResponseStatus::kMalformed;
        response.error = error;
        return response.encode();
    }
    return call(*request).encode();
}

Response
Service::call(const Request& request)
{
    bump("serve/requests");

    if (request.op == "ping") {
        bump("serve/ok");
        Response response;
        response.id = request.id;
        response.result_json = "{\"pong\":true}";
        return response;
    }
    if (request.op == "stats") {
        bump("serve/ok");
        const ServiceStats s = stats();
        Response response;
        response.id = request.id;
        response.result_json =
            "{\"requests\":" + std::to_string(s.requests) +
            ",\"ok\":" + std::to_string(s.ok) +
            ",\"cache_hits\":" + std::to_string(s.cache_hits) +
            ",\"coalesced\":" + std::to_string(s.coalesced) +
            ",\"executed\":" + std::to_string(s.executed) +
            ",\"rejected\":" + std::to_string(s.rejected) +
            ",\"queue_peak\":" + std::to_string(s.queue_peak) +
            ",\"p50_us\":" + jsonNumber(s.p50_us) +
            ",\"p99_us\":" + jsonNumber(s.p99_us) + "}";
        return response;
    }

    const u64 t0 = wallMicros();
    Response response = simulate(request);
    if (response.status == ResponseStatus::kOk) {
        bump("serve/ok");
        recordLatency(static_cast<double>(wallMicros() - t0));
    }
    return response;
}

Response
Service::okResponse(const Request& request, const RequestKey& key,
                    const char* disposition, std::string result)
{
    Response response;
    response.id = request.id;
    response.key = hexDigest(key.digest);
    response.cache = disposition;
    response.result_json = std::move(result);
    return response;
}

Response
Service::simulate(const Request& request)
{
    const RequestKey key = requestKey(request);

    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // 1. Memoization. (cache_ has its own leaf lock; taking it
        //    under mutex_ keeps the probe atomic with the flight map.)
        if (auto cached = cache_.get(key.canonical)) {
            auto& counters = session_.counters();
            counters.add(counters.id("serve/cache_hit"));
            Response response;
            response.id = request.id;
            response.key = hexDigest(key.digest);
            response.cache = "hit";
            response.result_json = std::move(*cached);
            return response;
        }
        if (draining_) {
            auto& counters = session_.counters();
            counters.add(counters.id("serve/drain_rejected"));
            Response response;
            response.id = request.id;
            response.status = ResponseStatus::kDraining;
            response.error = "service is draining";
            return response;
        }
        // 2. Single-flight: join a concurrent identical request...
        auto it = inflight_.find(key.canonical);
        if (it != inflight_.end()) {
            flight = it->second;
        } else {
            // ...or own the computation. Registering the flight before
            // releasing the lock guarantees drain() waits for us.
            flight = std::make_shared<Flight>();
            flight->future = flight->promise.get_future().share();
            inflight_[key.canonical] = flight;
            owner = true;
        }
    }

    if (!owner) {
        const auto result = flight->future.get();
        if (result == nullptr) {
            // The owner was rejected by admission control; the cell was
            // never queued, so this coalesced request is overloaded too.
            bump("serve/rejected");
            Response response;
            response.id = request.id;
            response.status = ResponseStatus::kOverloaded;
            response.error = "pending queue is full";
            return response;
        }
        bump("serve/coalesced");
        return okResponse(request, key, "coalesced", *result);
    }

    // 3. Admission control: bounded enqueue, fail fast when full.
    auto future = pool_->trySubmit(
        options_.queue_limit, [this, request] { return executeCell(request); });
    if (!future) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(key.canonical);
            auto& counters = session_.counters();
            counters.add(counters.id("serve/rejected"));
        }
        drained_.notify_all();
        flight->promise.set_value(nullptr);
        Response response;
        response.id = request.id;
        response.status = ResponseStatus::kOverloaded;
        response.error = "pending queue is full";
        return response;
    }
    {
        // Queue-depth observability: peak gauge + a counter series the
        // trace viewer renders as a depth-over-time graph.
        std::lock_guard<std::mutex> lock(mutex_);
        const u64 depth = pool_->pending();
        queue_peak_ = std::max(queue_peak_, depth);
        session_.counterSample(session_.track("serve"), "serve/queue_depth",
                               wallMicros(), depth);
    }

    // 4. Execute, memoize, publish to coalescers.
    std::string result = future->get();
    cache_.put(key.canonical, result);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(key.canonical);
        auto& counters = session_.counters();
        counters.add(counters.id("serve/executed"));
    }
    drained_.notify_all();
    flight->promise.set_value(
        std::make_shared<const std::string>(result));
    return okResponse(request, key, "miss", std::move(result));
}

std::string
Service::executeCell(const Request& request)
{
    const u64 t0 = wallMicros();

    // The shared catalog pins the graph for the duration of the cell;
    // eviction by concurrent requests never invalidates it.
    const graph::GraphPtr graph =
        request.algo == harness::Algo::kMst
            ? catalog_.getWeighted(request.graph, request.divisor)
            : catalog_.get(request.graph, request.divisor);

    harness::ExperimentConfig config;
    config.reps = request.reps;
    config.graph_divisor = request.divisor;
    config.cache_divisor = request.cache_divisor;
    config.seed = request.seed;
    config.jobs = 1;  // the request IS the cell; sharding is per-request

    // The seed base comes from the request alone — never from the
    // worker, the schedule, or arrival order — so concurrent execution
    // is byte-identical to a serial replay.
    const harness::Measurement m = harness::measureSeeded(
        simt::findGpu(request.gpu), *graph, request.graph, request.algo,
        config, request.seed);
    std::string result = encodeResult(request, m);

    {
        // One span per executed cell on the worker's serve track.
        std::lock_guard<std::mutex> lock(mutex_);
        const int worker = core::ThreadPool::currentWorkerIndex();
        const prof::TrackId track = session_.track(
            "serve/w" + std::to_string(std::max(worker, 0)));
        const u64 t1 = wallMicros();
        session_.beginSpan(track,
                           std::string(harness::algoName(request.algo)) +
                               "/" + request.graph,
                           t0,
                           {{"gpu", request.gpu},
                            {"seed", std::to_string(request.seed)},
                            {"key", hexDigest(requestKey(request).digest)}});
        session_.endSpan(track, std::max(t1, t0));
    }
    return result;
}

void
Service::drain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        draining_ = true;
        drained_.wait(lock, [this] { return inflight_.empty(); });
        if (pool_ == nullptr)
            return;  // a racing drain already stopped the pool
    }
    // In-flight work is delivered; stopping the pool joins the workers.
    // (No new submissions can arrive: draining_ refuses them.)
    std::unique_ptr<core::ThreadPool> pool;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pool = std::move(pool_);
    }
    pool.reset();
}

bool
Service::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

ServiceStats
Service::stats() const
{
    ServiceStats out;
    std::vector<double> latencies;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto& counters = session_.counters();
        out.requests = counters.valueByName("serve/requests");
        out.ok = counters.valueByName("serve/ok");
        out.cache_hits = counters.valueByName("serve/cache_hit");
        out.coalesced = counters.valueByName("serve/coalesced");
        out.executed = counters.valueByName("serve/executed");
        out.rejected = counters.valueByName("serve/rejected");
        out.drain_rejected = counters.valueByName("serve/drain_rejected");
        out.malformed = counters.valueByName("serve/malformed");
        out.queue_peak = queue_peak_;
        latencies = latencies_us_;
    }
    if (!latencies.empty()) {
        out.p50_us = stats::percentile(latencies, 50.0);
        out.p99_us = stats::percentile(latencies, 99.0);
        out.max_us = stats::maximum(latencies);
    }
    return out;
}

void
Service::publishGaugeCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& counters = session_.counters();
    counters.add(counters.id("serve/queue_peak"), queue_peak_);
    counters.add(counters.id("serve/result_cache_size"), cache_.size());
    counters.add(counters.id("serve/result_cache_evictions"),
                 cache_.evictions());
    catalog_.publishCounters(counters);
}

}  // namespace eclsim::serve
