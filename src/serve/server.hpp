/**
 * @file
 * Line-delimited-JSON-over-TCP front end for serve::Service.
 *
 * The wire protocol is one JSON object per '\n'-terminated line, one
 * response line per request line, in order, per connection. Framing is
 * the only thing this layer adds — request handling is Service::
 * callLine, so a TCP client and an in-process ServiceHandle observe
 * exactly the same bytes.
 *
 * Threading: one accept thread plus one thread per live connection
 * (cell execution itself is bounded by the service's pool, so
 * connection threads mostly block on I/O or on a future). drain() is
 * the graceful-shutdown path used by the daemon's SIGINT/SIGTERM
 * handler: stop accepting, let every connection finish the request it
 * is serving (half-closing the read side so idle connections fall out
 * of their read loop), join the threads, then drain the service.
 *
 * Listens on 127.0.0.1 only — the daemon is a local experiment
 * service, not an internet-facing one.
 */
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "serve/service.hpp"

namespace eclsim::serve {

/** TCP front end (see file comment). */
class Server
{
  public:
    /**
     * Bind 127.0.0.1:port (0 = ephemeral) and start accepting.
     * fatal()s on bind failure (the port is the user's choice).
     */
    Server(Service& service, u16 port);

    /** Drains on destruction if still running. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** The bound port (useful with port 0). */
    u16 port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting, complete the request every
     * connection is currently serving, join all threads, then drain
     * the service. Idempotent.
     */
    void drain();

    /** Number of currently live client connections. */
    size_t connections() const;

  private:
    void acceptLoop();
    void connectionLoop(int fd);

    Service* service_;
    int listen_fd_ = -1;
    u16 port_ = 0;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};

    mutable std::mutex mutex_;
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        bool done = false;
    };
    std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace eclsim::serve
