#include "serve/request.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "graph/catalog.hpp"
#include "simt/gpu_spec.hpp"

namespace eclsim::serve {

namespace {

/** Lowercase with spaces, dashes and underscores removed — the alias
 *  form under which GPU and algorithm names are matched. */
std::string
squash(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        if (c == ' ' || c == '-' || c == '_')
            continue;
        out.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

std::optional<harness::Algo>
parseAlgo(const std::string& name)
{
    const std::string n = squash(name);
    if (n == "cc")
        return harness::Algo::kCc;
    if (n == "gc")
        return harness::Algo::kGc;
    if (n == "mis")
        return harness::Algo::kMis;
    if (n == "mst")
        return harness::Algo::kMst;
    if (n == "scc")
        return harness::Algo::kScc;
    if (n == "pr" || n == "pagerank")
        return harness::Algo::kPr;
    if (n == "bfs")
        return harness::Algo::kBfs;
    if (n == "wcc")
        return harness::Algo::kWcc;
    return std::nullopt;
}

/** Canonical GpuSpec name for any alias spelling; nullopt if unknown. */
std::optional<std::string>
canonicalGpu(const std::string& name)
{
    const std::string n = squash(name);
    for (const auto& spec : simt::evaluationGpus())
        if (squash(spec.name) == n)
            return spec.name;
    return std::nullopt;
}

/** The catalog entry for a graph name, or nullptr if unknown. */
const graph::CatalogEntry*
findInput(const std::string& name)
{
    for (const auto& entry : graph::undirectedCatalog())
        if (entry.name == name)
            return &entry;
    for (const auto& entry : graph::directedCatalog())
        if (entry.name == name)
            return &entry;
    return nullptr;
}

/** Read a non-negative integral number field with range checking. */
bool
readUint(const JsonObject& object, const std::string& key, u64 max_value,
         u64* out, std::string* error)
{
    auto it = object.numbers.find(key);
    if (it == object.numbers.end())
        return true;  // absent: keep the default
    const double v = it->second;
    if (!(v >= 0) || v != std::floor(v) ||
        v > static_cast<double>(max_value)) {
        *error = "field '" + key + "' must be an integer in [0, " +
                 std::to_string(max_value) + "]";
        return false;
    }
    *out = static_cast<u64>(v);
    return true;
}

/** FNV-1a 64-bit digest of the canonical string. */
u64
fnv1a64(const std::string& s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hex16(u64 v)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

}  // namespace

RequestKey
requestKey(const Request& request)
{
    // Field order is fixed and independent of the wire order; the id
    // and op are deliberately NOT part of the identity.
    RequestKey key;
    key.canonical = "algo=" + std::string(harness::algoName(request.algo)) +
                    "|cache=" + std::to_string(request.cache_divisor) +
                    "|divisor=" + std::to_string(request.divisor) +
                    "|gpu=" + request.gpu + "|graph=" + request.graph +
                    "|reps=" + std::to_string(request.reps) +
                    "|seed=" + std::to_string(request.seed);
    key.digest = fnv1a64(key.canonical);
    return key;
}

std::optional<Request>
parseRequest(const std::string& line, std::string* error)
{
    const auto object = parseFlatObject(line, error);
    if (!object)
        return std::nullopt;

    static const char* kKnown[] = {"id",   "op",   "graph",   "algo",
                                   "gpu",  "seed", "reps",    "divisor",
                                   "cache_divisor"};
    const auto known = [&](const std::string& key) {
        return std::find_if(std::begin(kKnown), std::end(kKnown),
                            [&](const char* k) { return key == k; }) !=
               std::end(kKnown);
    };
    for (const auto& [key, value] : object->strings)
        if (!known(key)) {
            *error = "unknown field '" + key + "'";
            return std::nullopt;
        }
    for (const auto& [key, value] : object->numbers)
        if (!known(key)) {
            *error = "unknown field '" + key + "'";
            return std::nullopt;
        }
    if (!object->bools.empty()) {
        *error = "unknown boolean field '" +
                 object->bools.begin()->first + "'";
        return std::nullopt;
    }

    Request request;
    request.id = object->getString("id", "");
    request.op = object->getString("op", "simulate");
    if (request.op == "ping" || request.op == "stats")
        return request;  // control ops carry no simulation coordinates
    if (request.op != "simulate") {
        *error = "unknown op '" + request.op + "'";
        return std::nullopt;
    }

    request.graph = object->getString("graph", "");
    if (request.graph.empty()) {
        *error = "missing required field 'graph'";
        return std::nullopt;
    }
    const auto algo = parseAlgo(object->getString("algo", ""));
    if (!algo) {
        *error = "missing or unknown 'algo' (cc, gc, mis, mst, scc, pr, "
                 "bfs, wcc)";
        return std::nullopt;
    }
    request.algo = *algo;

    const auto gpu = canonicalGpu(object->getString("gpu", kDefaultGpu));
    if (!gpu) {
        *error = "unknown 'gpu' (see table 1 for the evaluation GPUs)";
        return std::nullopt;
    }
    request.gpu = *gpu;

    u64 seed = kDefaultSeed, reps = kDefaultReps;
    u64 divisor = kDefaultDivisor, cache_divisor = kDefaultCacheDivisor;
    // Seeds ride in a JSON number: exact up to 2^53, plenty of streams.
    if (!readUint(*object, "seed", 1ULL << 53, &seed, error) ||
        !readUint(*object, "reps", 64, &reps, error) ||
        !readUint(*object, "divisor", 1u << 20, &divisor, error) ||
        !readUint(*object, "cache_divisor", 4096, &cache_divisor, error))
        return std::nullopt;
    if (reps == 0 || divisor == 0 || cache_divisor == 0) {
        *error = "'reps', 'divisor' and 'cache_divisor' must be >= 1";
        return std::nullopt;
    }
    request.seed = seed;
    request.reps = static_cast<u32>(reps);
    request.divisor = static_cast<u32>(divisor);
    request.cache_divisor = static_cast<u32>(cache_divisor);

    const graph::CatalogEntry* input = findInput(request.graph);
    if (input == nullptr) {
        *error = "unknown graph '" + request.graph + "'";
        return std::nullopt;
    }
    const bool needs_directed =
        harness::algoNeedsDirected(request.algo);
    if (input->directed != needs_directed) {
        *error = std::string(harness::algoName(request.algo)) +
                 (needs_directed ? " needs a directed input (table 3)"
                                 : " needs an undirected input (table 2)");
        return std::nullopt;
    }
    return request;
}

const char*
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::kOk:
        return "ok";
      case ResponseStatus::kMalformed:
        return "malformed";
      case ResponseStatus::kOverloaded:
        return "overloaded";
      case ResponseStatus::kDraining:
        return "draining";
    }
    return "?";
}

std::string
Response::encode() const
{
    std::string out = "{\"id\":" + quoteJson(id) + ",\"status\":";
    if (status == ResponseStatus::kOk) {
        out += "\"ok\"";
        if (!key.empty())
            out += ",\"key\":" + quoteJson(key);
        if (!cache.empty())
            out += ",\"cache\":" + quoteJson(cache);
        if (!result_json.empty())
            out += ",\"result\":" + result_json;
    } else {
        out += "\"error\"";
        out += ",\"error\":" + quoteJson(responseStatusName(status));
        if (!error.empty())
            out += ",\"detail\":" + quoteJson(error);
    }
    out += "}";
    return out;
}

std::string
encodeResult(const Request& request, const harness::Measurement& m)
{
    const RequestKey key = requestKey(request);
    // Fixed field order; doubles rendered by jsonNumber — the bytes of
    // this fragment are the determinism unit of the whole service.
    std::string out = "{";
    out += "\"graph\":" + quoteJson(request.graph);
    out += ",\"algo\":" +
           quoteJson(harness::algoName(request.algo));
    out += ",\"gpu\":" + quoteJson(request.gpu);
    out += ",\"seed\":" + std::to_string(request.seed);
    out += ",\"reps\":" + std::to_string(request.reps);
    out += ",\"divisor\":" + std::to_string(request.divisor);
    out += ",\"cache_divisor\":" + std::to_string(request.cache_divisor);
    out += ",\"key\":" + quoteJson(hex16(key.digest));
    out += ",\"vertices\":" + jsonNumber(m.vertices);
    out += ",\"edges\":" + jsonNumber(m.edges);
    out += ",\"avg_degree\":" + jsonNumber(m.avg_degree);
    out += ",\"baseline_ms\":" + jsonNumber(m.baseline_ms);
    out += ",\"racefree_ms\":" + jsonNumber(m.racefree_ms);
    out += ",\"baseline_iterations\":" +
           std::to_string(m.baseline_iterations);
    out += ",\"racefree_iterations\":" +
           std::to_string(m.racefree_iterations);
    out += ",\"speedup\":" + jsonNumber(m.speedup());
    out += "}";
    return out;
}

std::string
extractResultFragment(const std::string& response_line)
{
    const std::string marker = "\"result\":";
    const size_t at = response_line.find(marker);
    if (at == std::string::npos)
        return "";
    const size_t open = at + marker.size();
    if (open >= response_line.size() || response_line[open] != '{')
        return "";
    // The fragment is flat (no nested objects, no braces in strings
    // for our field set), so the first '}' closes it.
    const size_t close = response_line.find('}', open);
    if (close == std::string::npos)
        return "";
    return response_line.substr(open, close - open + 1);
}

}  // namespace eclsim::serve
