#include "serve/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace eclsim::serve {

std::string
JsonObject::getString(const std::string& key,
                      const std::string& fallback) const
{
    auto it = strings.find(key);
    return it == strings.end() ? fallback : it->second;
}

double
JsonObject::getNumber(const std::string& key, double fallback) const
{
    auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
}

namespace {

/** Cursor over the input line with fail-with-reason helpers. */
struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string& why)
    {
        if (error.empty())
            error = why + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    char
    peek()
    {
        skipSpace();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    parseString(std::string* out)
    {
        if (!eat('"'))
            return fail("expected '\"'");
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'n': out->push_back('\n'); break;
              case 't': out->push_back('\t'); break;
              case 'r': out->push_back('\r'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              default:
                // \uXXXX and anything else: not needed by the protocol.
                return fail("unsupported escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double* out)
    {
        skipSpace();
        const size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool digits = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                ((text[pos] == '-' || text[pos] == '+') && pos > start &&
                 (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
            digits |= std::isdigit(static_cast<unsigned char>(text[pos]));
            ++pos;
        }
        if (!digits)
            return fail("expected a number");
        const std::string token(text.substr(start, pos - start));
        char* end = nullptr;
        *out = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseLiteral(std::string_view word)
    {
        skipSpace();
        if (text.substr(pos, word.size()) != word)
            return fail("unknown literal");
        pos += word.size();
        return true;
    }
};

}  // namespace

std::optional<JsonObject>
parseFlatObject(std::string_view line, std::string* error)
{
    Parser p{line, 0, {}};
    JsonObject out;
    const auto failed = [&](const std::string& why) {
        p.fail(why);
        if (error)
            *error = p.error;
        return std::nullopt;
    };

    if (!p.eat('{'))
        return failed("expected '{'");
    if (!p.eat('}')) {
        for (;;) {
            std::string key;
            if (!p.parseString(&key))
                return failed("bad key");
            if (out.has(key))
                return failed("duplicate key '" + key + "'");
            if (!p.eat(':'))
                return failed("expected ':'");
            const char c = p.peek();
            if (c == '"') {
                std::string value;
                if (!p.parseString(&value))
                    return failed("bad string value");
                out.strings[key] = std::move(value);
            } else if (c == 't') {
                if (!p.parseLiteral("true"))
                    return failed("bad literal");
                out.bools[key] = true;
            } else if (c == 'f') {
                if (!p.parseLiteral("false"))
                    return failed("bad literal");
                out.bools[key] = false;
            } else if (c == 'n') {
                if (!p.parseLiteral("null"))
                    return failed("bad literal");
                // null fields are treated as absent
            } else if (c == '{' || c == '[') {
                return failed("nested values are not allowed");
            } else {
                double value = 0.0;
                if (!p.parseNumber(&value))
                    return failed("bad value");
                out.numbers[key] = value;
            }
            if (p.eat(','))
                continue;
            if (p.eat('}'))
                break;
            return failed("expected ',' or '}'");
        }
    }
    p.skipSpace();
    if (p.pos != line.size())
        return failed("trailing garbage");
    if (error)
        error->clear();
    return out;
}

std::string
quoteJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

}  // namespace eclsim::serve
