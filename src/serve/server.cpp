#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/logging.hpp"

namespace eclsim::serve {

namespace {

/** write() the whole buffer, retrying short writes and EINTR. */
bool
writeAll(int fd, const char* data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::write(fd, data + sent, size - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

}  // namespace

Server::Server(Service& service, u16 port) : service_(&service)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("socket(): {}", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        fatal("bind(127.0.0.1:{}): {}", port, std::strerror(errno));
    if (::listen(listen_fd_, 64) != 0)
        fatal("listen(): {}", std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
        fatal("getsockname(): {}", std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    accept_thread_ = std::thread([this] { acceptLoop(); });
}

Server::~Server()
{
    drain();
}

size_t
Server::connections() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t live = 0;
    for (const auto& connection : connections_)
        live += connection->done ? 0 : 1;
    return live;
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed: we are draining
        }
        if (stopping_.load()) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        std::lock_guard<std::mutex> lock(mutex_);
        auto connection = std::make_unique<Connection>();
        Connection* raw = connection.get();
        raw->fd = fd;
        raw->thread = std::thread([this, raw] { connectionLoop(raw->fd); });
        // Mark-done happens inside connectionLoop via the raw pointer;
        // the vector owns the Connection until drain() joins it.
        connections_.push_back(std::move(connection));
    }
}

void
Server::connectionLoop(int fd)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;  // EOF or error (including drain's half-close)
        buffer.append(chunk, static_cast<size_t>(n));

        size_t start = 0;
        for (;;) {
            const size_t newline = buffer.find('\n', start);
            if (newline == std::string::npos)
                break;
            std::string line = buffer.substr(start, newline - start);
            start = newline + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string response = service_->callLine(line) + "\n";
            if (!writeAll(fd, response.data(), response.size())) {
                start = buffer.size();
                break;
            }
        }
        buffer.erase(0, start);
    }
    ::close(fd);

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_)
        if (connection->fd == fd)
            connection->done = true;
}

void
Server::drain()
{
    if (stopping_.exchange(true)) {
        // A racing or repeated drain: the first caller does the work;
        // just make sure it finished before returning.
        if (accept_thread_.joinable())
            accept_thread_.join();
        return;
    }

    // Closing the listener pops acceptLoop out of accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable())
        accept_thread_.join();

    // Half-close every connection: reads return 0, so each loop exits
    // after the request it is serving now (writes still flow).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& connection : connections_)
            if (!connection->done)
                ::shutdown(connection->fd, SHUT_RD);
    }
    for (const auto& connection : connections_)
        if (connection->thread.joinable())
            connection->thread.join();

    // With every connection gone, finish the service's in-flight work.
    service_->drain();
}

}  // namespace eclsim::serve
