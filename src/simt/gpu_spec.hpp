/**
 * @file
 * Simulated GPU descriptions.
 *
 * Table I of the paper lists the four evaluation GPUs. GpuSpec carries
 * those published parameters (SM count, core count, L1/L2 capacity,
 * memory bandwidth) plus the timing-model parameters eclsim adds: cache
 * latencies, the atomic-unit cost, and a latency-hiding factor. The
 * atomic cost grows from Volta to Ada while the regular path gets faster,
 * reproducing the paper's observation that newer GPUs are more negatively
 * affected by the extra synchronization (Section VII).
 */
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace eclsim::simt {

/** Static description of one simulated GPU. */
struct GpuSpec
{
    std::string name;
    std::string architecture;
    u32 num_sms = 1;
    u32 cores = 0;            ///< total processing elements (Table I)
    u64 l1_bytes = 0;         ///< per-SM L1 capacity
    u64 l2_bytes = 0;         ///< shared L2 capacity
    u64 memory_bytes = 0;     ///< device memory size
    double mem_bandwidth_gbps = 0.0;
    double clock_ghz = 1.0;
    std::string nvcc_version;  ///< compiler listed in Table I
    std::string nvcc_flags;

    // --- timing-model parameters (eclsim additions) ---
    u32 l1_latency = 32;     ///< cycles for an L1 hit
    u32 l2_latency = 190;    ///< cycles for an L2 hit
    u32 dram_latency = 480;  ///< cycles for a DRAM access
    /** Extra cycles charged for every atomic load/store (L2 atomic unit). */
    u32 atomic_extra = 60;
    /** Additional cycles for a read-modify-write beyond atomic_extra. */
    u32 rmw_extra = 40;
    /**
     * Fence cost of ordered atomics: acquire/release pay half of this,
     * seq_cst the full amount. Relaxed atomics — what the paper's
     * converted codes use — pay nothing, which is why they stay cheap.
     */
    u32 fence_cycles = 160;
    /** Extra cycles for system-scope atomics (host-visible). */
    u32 system_scope_extra = 200;
    /** Discount factor for block-scope atomics, which can resolve in
     *  the SM instead of the L2 (cost = l1_latency + atomic_extra). */
    bool block_scope_in_sm = true;
    /** Average number of warps whose memory latency overlaps. */
    double latency_hiding = 10.0;
    /** Unhidden issue cost per memory instruction (throughput slot). */
    u32 issue_cycles = 12;
    u32 warp_size = 32;
};

/** NVIDIA Titan V (Volta), Table I row 1. */
GpuSpec titanV();
/** NVIDIA GeForce RTX 2070 Super (Turing), Table I row 2. */
GpuSpec rtx2070Super();
/** NVIDIA A100 40GB (Ampere), Table I row 3. */
GpuSpec a100();
/** NVIDIA GeForce RTX 4090 (Ada Lovelace), Table I row 4. */
GpuSpec rtx4090();

/** All four evaluation GPUs in the paper's order. */
const std::vector<GpuSpec>& evaluationGpus();

/** Look up an evaluation GPU by (case-sensitive) name; fatal() if absent. */
const GpuSpec& findGpu(const std::string& name);

}  // namespace eclsim::simt
