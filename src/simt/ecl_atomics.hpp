/**
 * @file
 * The paper's race-elimination device library (Figures 2-5), expressed
 * over the simulator's ThreadCtx API.
 *
 * Fig. 2: atomicRead / atomicWrite — relaxed atomic load/store wrappers
 *   (libcu++ cuda::atomic with cuda::memory_order_relaxed).
 * Fig. 3: atomically reading a char by casting the array to int,
 *   atomically loading the covering word, and shifting/masking.
 * Fig. 4: atomically writing a char with atomic bitwise AND/OR masks.
 * Fig. 5: readFirst/readSecond/writeFirst/writeSecond — accessing the two
 *   int halves of an int2 pair stored as a long long. Word tearing
 *   between the halves is acceptable (each half is independently
 *   meaningful); tearing within a half is not, hence the 32-bit atomics.
 *
 * All functions return awaitables; kernels use them as
 *   `stat nv = ecl::extractByte(co_await ecl::atomicReadByteWord(...))`.
 */
#pragma once

#include "simt/engine.hpp"

namespace eclsim::ecl {

using simt::AccessMode;
using simt::DevicePtr;
using simt::ThreadCtx;

/** Fig. 2: relaxed atomic load. */
template <typename T>
auto
atomicRead(ThreadCtx& t, DevicePtr<T> ptr, u64 index = 0)
{
    return t.load(ptr, index, AccessMode::kAtomic);
}

/** Fig. 2: relaxed atomic store. */
template <typename T>
auto
atomicWrite(ThreadCtx& t, DevicePtr<T> ptr, u64 index, T value)
{
    return t.store(ptr, index, value, AccessMode::kAtomic);
}

// --- Fig. 3: typecasting and masking for byte-size loads -----------------

/**
 * Atomically load the 32-bit word covering byte element index of a byte
 * array (the `atomicRead(&nstat4[v / 4])` of Fig. 3b). The allocation is
 * 128-byte aligned, so the cast to int is always safe.
 */
inline auto
atomicReadByteWord(ThreadCtx& t, DevicePtr<u8> base, u64 index)
{
    return t.load(base.template cast<u32>(), index / 4,
                  AccessMode::kAtomic);
}

/** Extract byte element index from its covering word (Fig. 3b line 3). */
constexpr u8
extractByte(u32 word, u64 index)
{
    return static_cast<u8>((word >> ((index % 4) * 8)) & 0xffu);
}

// --- Fig. 4: typecasting and masking for byte-size stores ----------------

/**
 * Atomically clear bits of byte element index: the covering word is
 * AND-ed with a mask that keeps every other byte intact and keeps only
 * `keep` bits of the target byte (Fig. 4b uses keep = 0x00 to write 0).
 */
inline auto
atomicByteAnd(ThreadCtx& t, DevicePtr<u8> base, u64 index, u8 keep)
{
    const u32 shift = static_cast<u32>((index % 4) * 8);
    const u32 mask = ~(0xffu << shift) | (static_cast<u32>(keep) << shift);
    return t.atomicAnd(base.template cast<u32>(), index / 4, mask);
}

/** Atomically set bits of byte element index via atomic OR. */
inline auto
atomicByteOr(ThreadCtx& t, DevicePtr<u8> base, u64 index, u8 bits)
{
    const u32 shift = static_cast<u32>((index % 4) * 8);
    return t.atomicOr(base.template cast<u32>(), index / 4,
                      static_cast<u32>(bits) << shift);
}

// --- Fig. 5: int pairs stored in long long --------------------------------

/** Atomically read the first int of pair element index. */
inline auto
readFirst(ThreadCtx& t, DevicePtr<u64> pairs, u64 index)
{
    return t.load(pairs.template cast<u32>(), 2 * index,
                  AccessMode::kAtomic);
}

/** Atomically read the second int of pair element index. */
inline auto
readSecond(ThreadCtx& t, DevicePtr<u64> pairs, u64 index)
{
    return t.load(pairs.template cast<u32>(), 2 * index + 1,
                  AccessMode::kAtomic);
}

/** Atomically write the first int of pair element index. */
inline auto
writeFirst(ThreadCtx& t, DevicePtr<u64> pairs, u64 index, u32 first)
{
    return t.store(pairs.template cast<u32>(), 2 * index, first,
                   AccessMode::kAtomic);
}

/** Atomically write the second int of pair element index. */
inline auto
writeSecond(ThreadCtx& t, DevicePtr<u64> pairs, u64 index, u32 second)
{
    return t.store(pairs.template cast<u32>(), 2 * index + 1, second,
                   AccessMode::kAtomic);
}

// --- plain (racy) counterparts used by the baselines ----------------------

/** Non-atomic read of one int half of a pair (the racy baseline form). */
inline auto
plainReadFirst(ThreadCtx& t, DevicePtr<u64> pairs, u64 index,
               AccessMode mode = AccessMode::kPlain)
{
    return t.load(pairs.template cast<u32>(), 2 * index, mode);
}

/** Non-atomic read of the second int half of a pair. */
inline auto
plainReadSecond(ThreadCtx& t, DevicePtr<u64> pairs, u64 index,
                AccessMode mode = AccessMode::kPlain)
{
    return t.load(pairs.template cast<u32>(), 2 * index + 1, mode);
}

/** Non-atomic write of the first int half of a pair. */
inline auto
plainWriteFirst(ThreadCtx& t, DevicePtr<u64> pairs, u64 index, u32 first,
                AccessMode mode = AccessMode::kPlain)
{
    return t.store(pairs.template cast<u32>(), 2 * index, first, mode);
}

/** Non-atomic write of the second int half of a pair. */
inline auto
plainWriteSecond(ThreadCtx& t, DevicePtr<u64> pairs, u64 index, u32 second,
                 AccessMode mode = AccessMode::kPlain)
{
    return t.store(pairs.template cast<u32>(), 2 * index + 1, second, mode);
}

}  // namespace eclsim::ecl
