#include "simt/device_memory.hpp"

namespace eclsim::simt {

DeviceMemory::DeviceMemory(u64 capacity_bytes) : capacity_(capacity_bytes) {}

u64
DeviceMemory::allocBytes(u64 bytes, std::string name, Visibility visibility)
{
    ECLSIM_ASSERT(bytes > 0, "zero-size allocation '{}'", name);
    constexpr u64 kAlign = 128;
    const u64 offset = (arena_.size() + kAlign - 1) / kAlign * kAlign;
    const u64 end = offset + bytes;
    if (end > capacity_)
        fatal("device memory exhausted: allocation '{}' of {} bytes "
              "exceeds capacity {}",
              name, bytes, capacity_);
    arena_.resize(end, 0);
    if (visibility == Visibility::kSweepSnapshot) {
        has_snapshot_allocs_ = true;
        if (snapshot_.size() < end)
            snapshot_.resize(end, 0);
        if (writers_.size() < end)
            writers_.resize(end, kNoWriter);
    }

    Allocation alloc;
    alloc.name = std::move(name);
    alloc.offset = offset;
    alloc.bytes = bytes;
    alloc.visibility = visibility;
    allocations_.push_back(std::move(alloc));

    const u64 last_page = (end - 1) / kPageBytes;
    if (page_to_allocation_.size() <= last_page)
        page_to_allocation_.resize(last_page + 1, kNoAllocation);
    // A page may straddle two allocations; the later allocation wins for
    // its own pages, and allocationAt() double-checks the byte range.
    for (u64 page = offset / kPageBytes; page <= last_page; ++page)
        page_to_allocation_[page] = static_cast<u32>(allocations_.size() - 1);
    return offset;
}

const Allocation&
DeviceMemory::allocation(size_t index) const
{
    ECLSIM_ASSERT(index < allocations_.size(), "allocation index {}", index);
    return allocations_[index];
}






u64
DeviceMemory::loadSnapshotAware(u64 addr, u8 size, u32 reader_thread) const
{
    checkRange(addr, size);
    u64 value = 0;
    for (u8 i = 0; i < size; ++i) {
        const u64 a = addr + i;
        const u8 byte =
            writers_[a] == reader_thread ? arena_[a] : snapshot_[a];
        value |= static_cast<u64>(byte) << (8 * i);
    }
    return value;
}

void
DeviceMemory::noteWriter(u64 addr, u8 size, u32 writer_thread)
{
    checkRange(addr, size);
    for (u8 i = 0; i < size; ++i)
        writers_[addr + i] = writer_thread;
}

void
DeviceMemory::snapshotSweepAllocations()
{
    if (!has_snapshot_allocs_)
        return;
    for (const Allocation& alloc : allocations_) {
        if (alloc.visibility != Visibility::kSweepSnapshot)
            continue;
        std::memcpy(snapshot_.data() + alloc.offset,
                    arena_.data() + alloc.offset, alloc.bytes);
        std::fill_n(writers_.begin() + static_cast<i64>(alloc.offset),
                    alloc.bytes, kNoWriter);
    }
}

}  // namespace eclsim::simt
