#include "simt/engine.hpp"

#include <algorithm>
#include <queue>
#include <string>
#include <tuple>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "prof/trace.hpp"
#include "simt/observer.hpp"

namespace eclsim::simt {

LaunchStats&
LaunchStats::operator+=(const LaunchStats& other)
{
    cycles += other.cycles;
    ms += other.ms;
    mem += other.mem;
    return *this;
}

const char*
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::kFast:
        return "fast";
      case ExecMode::kInterleaved:
        return "interleaved";
      case ExecMode::kWarpBatched:
        return "batch";
    }
    return "fast";
}

ExecMode
parseExecMode(std::string_view name)
{
    if (name == "fast")
        return ExecMode::kFast;
    if (name == "interleaved")
        return ExecMode::kInterleaved;
    if (name == "batch")
        return ExecMode::kWarpBatched;
    fatal("unknown exec mode '{}' (expected interleaved|fast|batch)",
          name);
}

const char*
batchFallbackName(BatchFallback reason)
{
    switch (reason) {
      case BatchFallback::kNone:
        return "none";
      case BatchFallback::kNotBatchMode:
        return "not_batch_mode";
      case BatchFallback::kScalarKernel:
        return "scalar_kernel";
      case BatchFallback::kForcedSlow:
        return "forced_slow_path";
      case BatchFallback::kRaceDetector:
        return "race_detector";
      case BatchFallback::kPerturbHooks:
        return "perturb_hooks";
      case BatchFallback::kObserver:
        return "observer";
      case BatchFallback::kSiteOverrides:
        return "site_overrides";
    }
    return "unknown";
}

LaunchConfig
launchFor(u64 work, u32 block)
{
    LaunchConfig config;
    config.block_x = block;
    config.block_y = 1;
    config.grid = static_cast<u32>(
        std::max<u64>(1, (work + block - 1) / block));
    return config;
}

Engine::Engine(GpuSpec spec, DeviceMemory& memory, EngineOptions options)
    : spec_(std::move(spec)), memory_(memory), options_(options)
{
    ECLSIM_ASSERT(spec_.num_sms >= 1, "GPU needs at least one SM");
    trace_ = options_.trace;
    prof::CounterRegistry* counters =
        trace_ ? &trace_->counters() : nullptr;
    if (options_.detect_races)
        detector_ = std::make_unique<RaceDetector>(memory_, counters);
    mem_subsystem_ = std::make_unique<MemorySubsystem>(
        spec_, memory_, options_.memory, detector_.get(), counters,
        options_.perturb, options_.observer);
    if (trace_) {
        kernel_track_ = trace_->track("kernels");
        prof::CounterRegistry& reg = trace_->counters();
        c_batch_launches_ = reg.id("sim/mem/batch/launches");
        c_batch_batched_ = reg.id("sim/mem/batch/batched");
        c_batch_fallbacks_ = reg.id("sim/mem/batch/fallbacks");
    }
    has_request_overrides_ =
        options_.override_atomic_order || options_.override_atomic_scope ||
        (options_.site_overrides != nullptr &&
         !options_.site_overrides->empty());
    sm_cycles_.assign(spec_.num_sms, 0);
}

Engine::~Engine() = default;

const std::vector<u32>&
Engine::blockOrder(u32 grid)
{
    std::vector<u32>& order = block_order_;
    order.resize(grid);
    for (u32 b = 0; b < grid; ++b)
        order[b] = b;
    if (options_.shuffle_blocks && grid > 1) {
        SplitMix64 rng(options_.seed ^ hash64(launch_counter_));
        for (u32 i = grid - 1; i > 0; --i)
            std::swap(order[i], order[rng.nextBelow(i + 1)]);
    }
    // Adversarial scheduling: the hooks may rewrite the (shuffled)
    // schedule — real GPUs guarantee no block order whatsoever.
    if (options_.perturb && grid > 1)
        options_.perturb->reorderBlocks(order, launch_counter_);
    return order;
}

void
Engine::submitAccess(ThreadCtx& ctx, const MemRequest& req_in)
{
    // Interleaved mode: execute the first piece now; the remaining piece
    // (if any) executes when the thread wakes, so other threads can
    // observe — or destroy — the half-done access in between. This engine
    // models the hypothetical 32-bit-native target of the paper's Fig. 1,
    // so wide non-atomic accesses are split.
    MemRequest req = req_in;
    req.split_wide = true;
    if (options_.site_overrides != nullptr)
        options_.site_overrides->apply(req);
    applyAtomicOverrides(req);
    const auto result =
        mem_subsystem_->performPieces(ctx.info_, ctx.sm_, req, 0, 1);
    ctx.pending_req_ = req;
    ctx.pending_bits_ = result.value_bits;
    ctx.pending_pieces_done_ = 1;
    ctx.has_pending_ = true;
    ctx.ready_cycle_ = now_ + spec_.issue_cycles + result.latency +
                       ctx.deferred_work_;
    ctx.deferred_work_ = 0;
}

void
Engine::arriveBarrier(ThreadCtx& ctx)
{
    ctx.at_barrier_ = true;
    ++barrier_count_[ctx.info_.block];
}

void
Engine::chargeWork(ThreadCtx& ctx, u32 cycles)
{
    if (immediateMode())
        sm_cycles_[ctx.sm_] += cycles;
    else
        ctx.deferred_work_ += cycles;
}

void
ThreadCtx::work(u32 cycles)
{
    engine_->chargeWork(*this, cycles);
}

void
MemAwaiterBase::await_suspend(std::coroutine_handle<>)
{
    ctx_->engine_->submitAccess(*ctx_, req_);
}

bool
BarrierAwaiter::await_ready()
{
    // A one-thread block synchronizes trivially.
    return ctx_->block_x_ * ctx_->block_y_ == 1;
}

void
BarrierAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx_->engine_->arriveBarrier(*ctx_);
}

LaunchStats
Engine::launch(std::string_view name, const LaunchConfig& config,
               const std::function<Task(ThreadCtx&)>& kernel)
{
    ECLSIM_ASSERT(config.grid >= 1 && config.blockSize() >= 1,
                  "empty launch '{}'", name);
    mem_subsystem_->beginLaunch();
    std::fill(sm_cycles_.begin(), sm_cycles_.end(), 0);
    barrier_count_.assign(config.grid, 0);
    block_alive_.assign(config.grid, config.blockSize());
    now_ = 0;
    use_fast_path_ = immediateMode() && mem_subsystem_->hookless() &&
                     !options_.force_slow_path;
    warp_batch_live_ = false;
    // A coroutine kernel is conservatively treated as divergent — the
    // engine cannot introspect its body for data-dependent lane
    // branches — so in batch mode it falls back to running exactly as
    // kFast, and the fallback is recorded for --counters.
    if (options_.mode == ExecMode::kWarpBatched)
        recordBatchOutcome(false, BatchFallback::kScalarKernel);
    else
        last_batch_ = {};
    // Recycle coroutine frames through this engine's pool for the whole
    // launch (kernel() instantiations allocate under this scope).
    FramePool::Scope frame_scope(frame_pool_);

    const u64 races_before =
        detector_ ? detector_->reports().size() : 0;
    if (options_.observer != nullptr)
        options_.observer->onLaunchBegin(name, config.grid,
                                         config.blockSize());
    traceLaunchBegin(name, config, modeLabel(false));

    LaunchStats stats;
    stats.kernel = name;
    if (immediateMode())
        runFast(config, kernel, stats);
    else
        runInterleaved(config, kernel, stats);

    // Kernel boundaries synchronize: flush any perturbation-buffered
    // stores before the host (or the next launch's snapshot) looks.
    mem_subsystem_->endLaunch();
    ++launch_counter_;
    stats.mem = mem_subsystem_->launchCounters();

    u64 cycles = 0;
    if (immediateMode()) {
        for (u64 c : sm_cycles_)
            cycles = std::max(cycles, c);
    } else {
        cycles = now_;
    }
    cycles = std::max(
        cycles, static_cast<u64>(mem_subsystem_->dramBoundCycles()));
    stats.cycles = cycles;
    stats.ms = static_cast<double>(cycles) / (spec_.clock_ghz * 1e6);
    elapsed_ms_ += stats.ms;
    traceLaunchEnd(stats, races_before);
    return stats;
}

LaunchStats
Engine::launch(std::string_view name, const LaunchConfig& config,
               const WarpKernel& kernel)
{
    ECLSIM_ASSERT(config.grid >= 1 && config.blockSize() >= 1,
                  "empty launch '{}'", name);
    ECLSIM_ASSERT(config.shared_bytes == 0,
                  "warp kernel '{}' cannot declare shared memory", name);
    ECLSIM_ASSERT(spec_.warp_size >= 1 &&
                      spec_.warp_size <= WarpCtx::kMaxLanes,
                  "warp size {} outside WarpCtx capacity {}",
                  spec_.warp_size, WarpCtx::kMaxLanes);
    mem_subsystem_->beginLaunch();
    std::fill(sm_cycles_.begin(), sm_cycles_.end(), 0);
    now_ = 0;
    // Warp kernels always run to completion (they are bulk-synchronous
    // straight-line code), whatever the engine mode; the hookless fast
    // path and the batched route are each selected once per launch.
    use_fast_path_ =
        mem_subsystem_->hookless() && !options_.force_slow_path;
    const BatchFallback reason = batchEligibility();
    warp_batch_live_ = reason == BatchFallback::kNone;
    recordBatchOutcome(warp_batch_live_, reason);
    // Frame-free execution: no coroutines exist on this path, so no
    // FramePool::Scope is installed — and none may already be active.
    ECLSIM_ASSERT(!FramePool::scopeActive(),
                  "warp-kernel launch '{}' inside a frame-pool scope",
                  name);

    const u64 races_before =
        detector_ ? detector_->reports().size() : 0;
    if (options_.observer != nullptr)
        options_.observer->onLaunchBegin(name, config.grid,
                                         config.blockSize());
    traceLaunchBegin(name, config, modeLabel(warp_batch_live_));

    LaunchStats stats;
    stats.kernel = name;
    runWarps(config, kernel, stats);

    mem_subsystem_->endLaunch();
    ++launch_counter_;
    stats.mem = mem_subsystem_->launchCounters();

    u64 cycles = 0;
    for (u64 c : sm_cycles_)
        cycles = std::max(cycles, c);
    cycles = std::max(
        cycles, static_cast<u64>(mem_subsystem_->dramBoundCycles()));
    stats.cycles = cycles;
    stats.ms = static_cast<double>(cycles) / (spec_.clock_ghz * 1e6);
    elapsed_ms_ += stats.ms;
    traceLaunchEnd(stats, races_before);
    return stats;
}

BatchFallback
Engine::batchEligibility() const
{
    if (options_.mode != ExecMode::kWarpBatched)
        return BatchFallback::kNotBatchMode;
    if (options_.force_slow_path)
        return BatchFallback::kForcedSlow;
    if (detector_ != nullptr)
        return BatchFallback::kRaceDetector;
    if (options_.perturb != nullptr)
        return BatchFallback::kPerturbHooks;
    if (options_.observer != nullptr)
        return BatchFallback::kObserver;
    if (options_.site_overrides != nullptr &&
        !options_.site_overrides->empty() &&
        !options_.site_overrides->warpUniform())
        return BatchFallback::kSiteOverrides;
    return BatchFallback::kNone;
}

void
Engine::recordBatchOutcome(bool batched, BatchFallback reason)
{
    last_batch_.attempted = true;
    last_batch_.batched = batched;
    last_batch_.reason = reason;
    if (batched)
        ++batched_launches_;
    else
        ++fallback_launches_;
    if (!trace_)
        return;
    prof::CounterRegistry& reg = trace_->counters();
    reg.add(c_batch_launches_);
    if (batched) {
        reg.add(c_batch_batched_);
    } else {
        reg.add(c_batch_fallbacks_);
        reg.add(reg.id(std::string("sim/mem/batch/fallback/") +
                       batchFallbackName(reason)));
    }
}

std::string_view
Engine::modeLabel(bool batched) const
{
    if (batched)
        return "batch";
    if (options_.mode == ExecMode::kWarpBatched)
        return "batch-fallback";
    return execModeName(options_.mode);
}

void
Engine::traceLaunchBegin(std::string_view name, const LaunchConfig& config,
                         std::string_view mode_label)
{
    if (!trace_)
        return;
    trace_base_ = trace_->cursor();
    trace_->beginSpan(kernel_track_, std::string(name), trace_base_,
                      {{"grid", std::to_string(config.grid)},
                       {"block", std::to_string(config.blockSize())},
                       {"mode", std::string(mode_label)}});
}

void
Engine::traceLaunchEnd(const LaunchStats& stats, u64 races_before)
{
    if (!trace_)
        return;
    const u64 t_end = trace_base_ + std::max<u64>(stats.cycles, 1);
    // Race reports first observed in this launch become instant events.
    if (detector_) {
        const auto& reports = detector_->reports();
        for (size_t i = races_before; i < reports.size(); ++i) {
            const RaceReport& r = reports[i];
            trace_->instant(
                kernel_track_, "race: " + r.allocation, t_end,
                {{"kind", raceKindName(r.kind)},
                 {"threads", std::to_string(r.first_thread_a) + " vs " +
                                 std::to_string(r.first_thread_b)}});
        }
    }
    if (stats.mem.stale_reads > 0) {
        trace_->instant(
            kernel_track_, "stale-visibility reads", t_end,
            {{"count", std::to_string(stats.mem.stale_reads)}});
    }
    // Per-launch counter samples: the memory-path story over time.
    trace_->counterSample(kernel_track_, "l1_hits", t_end,
                          stats.mem.l1.hits());
    trace_->counterSample(kernel_track_, "l2_hits", t_end,
                          stats.mem.l2.hits());
    trace_->counterSample(kernel_track_, "atomics", t_end,
                          stats.mem.atomic_accesses);
    trace_->endSpan(kernel_track_, t_end);
    trace_->advanceCursor(t_end);
}

void
Engine::traceBlockSpan(u32 sm, u32 block, std::string_view name,
                       u64 sm_begin, u64 sm_end)
{
    const auto track = trace_->smTrack(sm);
    trace_->beginSpan(track, std::string(name), trace_base_ + sm_begin,
                      {{"block", std::to_string(block)}});
    trace_->endSpan(track, trace_base_ + std::max(sm_end, sm_begin));
}

void
Engine::runFast(const LaunchConfig& config,
                const std::function<Task(ThreadCtx&)>& kernel,
                LaunchStats& stats)
{
    const auto& order = blockOrder(config.grid);
    const u32 block_size = config.blockSize();
    // Reused scratch: zero-fill matches the value-initialized vector a
    // fresh launch used to allocate (kernels may read shared memory
    // before writing it).
    std::vector<u8>& shared = shared_scratch_;
    shared.assign(std::max<u32>(config.shared_bytes, 1), 0);

    // Wide launches get one aggregated residency span per SM instead of
    // one per block, so traces of full-table sweeps stay loadable.
    const bool trace_blocks =
        trace_ != nullptr && config.grid <= kMaxTracedBlockSpans;

    std::vector<ThreadCtx>& threads = thread_scratch_;
    threads.resize(block_size);
    // Launch-invariant fields, written once instead of once per thread
    // per block (resetForReuse leaves them alone).
    for (u32 t = 0; t < block_size; ++t) {
        ThreadCtx& ctx = threads[t];
        ctx.engine_ = this;
        ctx.info_.launch = launch_counter_;
        ctx.thread_in_block_ = t;
        ctx.block_x_ = config.block_x;
        ctx.block_y_ = config.block_y;
        ctx.grid_ = config.grid;
        ctx.shared_base_ = shared.data();
        ctx.shared_limit_ = config.shared_bytes;
    }
    for (u32 pos = 0; pos < config.grid; ++pos) {
        const u32 block = order[pos];
        const u32 sm = pos % spec_.num_sms;
        if (options_.perturb)
            sm_cycles_[sm] += options_.perturb->smStallCycles(sm, block);
        const u64 sm_begin = sm_cycles_[sm];

        for (u32 t = 0; t < block_size; ++t) {
            ThreadCtx& ctx = threads[t];
            ctx.resetForReuse();
            ctx.info_.thread = block * block_size + t;
            ctx.info_.block = block;
            ctx.info_.epoch = 0;
            ctx.sm_ = sm;
            ctx.task_ = kernel(ctx);
        }

        // Run the block's threads; only barriers suspend in fast mode.
        u32 alive = block_size;
        while (alive > 0) {
            bool progressed = false;
            for (u32 t = 0; t < block_size; ++t) {
                ThreadCtx& ctx = threads[t];
                if (ctx.finished_ || ctx.at_barrier_)
                    continue;
                progressed = true;
                ctx.task_.resume();
                if (ctx.task_.done()) {
                    ctx.finished_ = true;
                    --alive;
                    --block_alive_[block];
                }
            }
            if (alive == 0)
                break;
            if (barrier_count_[block] == alive) {
                // Release the barrier: everyone alive has arrived.
                barrier_count_[block] = 0;
                sm_cycles_[sm] += kBarrierCycles;
                if (detector_) {
                    // Happens-before: join the participants' clocks so
                    // pre-barrier accesses order before post-barrier
                    // ones, transitively through prior synchronization.
                    std::vector<u32>& participants =
                        participants_scratch_;
                    participants.clear();
                    participants.reserve(alive);
                    for (u32 t = 0; t < block_size; ++t)
                        if (threads[t].at_barrier_)
                            participants.push_back(
                                threads[t].info_.thread);
                    detector_->onBarrier(launch_counter_, block,
                                         participants.data(),
                                         participants.size());
                }
                for (u32 t = 0; t < block_size; ++t) {
                    ThreadCtx& ctx = threads[t];
                    if (ctx.at_barrier_) {
                        ctx.at_barrier_ = false;
                        ++ctx.info_.epoch;
                    }
                }
            } else if (!progressed) {
                panic("__syncthreads deadlock in block {} ({} alive, {} "
                      "arrived)",
                      block, alive, barrier_count_[block]);
            }
        }

        if (trace_blocks)
            traceBlockSpan(sm, block, stats.kernel, sm_begin,
                           sm_cycles_[sm]);
    }

    if (trace_ && !trace_blocks) {
        for (u32 sm = 0; sm < spec_.num_sms; ++sm)
            if (sm_cycles_[sm] > 0)
                traceBlockSpan(sm, config.grid, stats.kernel, 0,
                               sm_cycles_[sm]);
    }

    // Destroy the contexts (capacity is kept) so every coroutine frame
    // returns to frame_pool_ before the launch ends: the pool's
    // outstanding count is zero between launches.
    threads.clear();
}

void
Engine::runWarps(const LaunchConfig& config, const WarpKernel& kernel,
                 LaunchStats& stats)
{
    const auto& order = blockOrder(config.grid);
    const u32 block_size = config.blockSize();
    const u32 warp = spec_.warp_size;
    const bool trace_blocks =
        trace_ != nullptr && config.grid <= kMaxTracedBlockSpans;

    // One engine-owned WarpCtx serves the whole launch (the
    // resetForReuse idiom): launch-invariant fields are written once,
    // the per-warp loop only re-points the identification fields, and
    // the SoA lane arrays are per-op storage.
    WarpCtx& w = warp_ctx_;
    w.engine_ = this;
    w.block_size_ = block_size;
    w.grid_size_ = config.grid * block_size;

    for (u32 pos = 0; pos < config.grid; ++pos) {
        const u32 block = order[pos];
        const u32 sm = pos % spec_.num_sms;
        if (options_.perturb)
            sm_cycles_[sm] += options_.perturb->smStallCycles(sm, block);
        const u64 sm_begin = sm_cycles_[sm];
        w.block_ = block;
        w.sm_ = sm;
        for (u32 t0 = 0; t0 < block_size; t0 += warp) {
            w.base_tid_ = block * block_size + t0;
            w.lane_count_ = std::min(warp, block_size - t0);
            w.next_site_ = 0;
            kernel(w);
        }
        if (trace_blocks)
            traceBlockSpan(sm, block, stats.kernel, sm_begin,
                           sm_cycles_[sm]);
    }

    if (trace_ && !trace_blocks) {
        for (u32 sm = 0; sm < spec_.num_sms; ++sm)
            if (sm_cycles_[sm] > 0)
                traceBlockSpan(sm, config.grid, stats.kernel, 0,
                               sm_cycles_[sm]);
    }
}

void
Engine::runInterleaved(const LaunchConfig& config,
                       const std::function<Task(ThreadCtx&)>& kernel,
                       LaunchStats& stats)
{
    (void)stats;
    const u64 total = config.totalThreads();
    ECLSIM_ASSERT(total <= options_.max_interleaved_threads,
                  "interleaved launch of {} threads exceeds the cap {}",
                  total, options_.max_interleaved_threads);
    const auto& order = blockOrder(config.grid);
    const u32 block_size = config.blockSize();

    std::vector<std::vector<u8>> shared(
        config.grid,
        std::vector<u8>(std::max<u32>(config.shared_bytes, 1)));
    std::vector<ThreadCtx> threads(total);
    std::vector<u64> block_start(config.grid, 0);

    // (ready_cycle, sequence, thread index): min-heap ordered by time with
    // a deterministic tiebreak.
    using QueueEntry = std::tuple<u64, u64, u64>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    u64 seq = 0;

    u64 idx = 0;
    for (u32 pos = 0; pos < config.grid; ++pos) {
        const u32 block = order[pos];
        const u32 sm = pos % spec_.num_sms;
        block_start[block] = idx;
        for (u32 t = 0; t < block_size; ++t, ++idx) {
            ThreadCtx& ctx = threads[idx];
            ctx.engine_ = this;
            ctx.info_.launch = launch_counter_;
            ctx.info_.thread = block * block_size + t;
            ctx.info_.block = block;
            ctx.sm_ = sm;
            ctx.thread_in_block_ = t;
            ctx.block_x_ = config.block_x;
            ctx.block_y_ = config.block_y;
            ctx.grid_ = config.grid;
            ctx.shared_base_ = shared[block].data();
            ctx.shared_limit_ = config.shared_bytes;
            ctx.task_ = kernel(ctx);
            // Small per-thread start jitter: real warp schedulers do not
            // start every thread in lockstep, and the jitter lets races
            // and word tearing realize different interleavings per seed.
            u64 start = hash64(options_.seed ^ (idx * 0x9e3779b9ULL)) % 64;
            if (options_.perturb)
                start += options_.perturb->smStallCycles(sm, block);
            queue.emplace(start, seq++, idx);
        }
    }

    u64 remaining = total;
    auto releaseBarrierIfReady = [&](u32 block) {
        if (block_alive_[block] == 0 ||
            barrier_count_[block] != block_alive_[block])
            return;
        barrier_count_[block] = 0;
        const u64 base = block_start[block];
        if (detector_) {
            std::vector<u32>& participants = participants_scratch_;
            participants.clear();
            for (u32 t = 0; t < block_size; ++t)
                if (threads[base + t].at_barrier_)
                    participants.push_back(
                        threads[base + t].info_.thread);
            detector_->onBarrier(launch_counter_, block,
                                 participants.data(),
                                 participants.size());
        }
        for (u32 t = 0; t < block_size; ++t) {
            ThreadCtx& ctx = threads[base + t];
            if (ctx.at_barrier_) {
                ctx.at_barrier_ = false;
                ++ctx.info_.epoch;
                queue.emplace(now_ + kBarrierCycles, seq++, base + t);
            }
        }
    };

    while (!queue.empty()) {
        const auto [ready, order_seq, ti] = queue.top();
        queue.pop();
        (void)order_seq;
        now_ = std::max(now_, ready);
        ThreadCtx& ctx = threads[ti];

        // Complete the second piece of a torn access at wake time.
        if (ctx.has_pending_ &&
            ctx.pending_pieces_done_ < ctx.pending_req_.pieces()) {
            const auto result = mem_subsystem_->performPieces(
                ctx.info_, ctx.sm_, ctx.pending_req_,
                ctx.pending_pieces_done_, ctx.pending_req_.pieces());
            ctx.pending_bits_ |= result.value_bits;
            ctx.pending_pieces_done_ = ctx.pending_req_.pieces();
        }
        ctx.has_pending_ = false;

        ctx.task_.resume();

        if (ctx.task_.done()) {
            ctx.finished_ = true;
            --block_alive_[ctx.info_.block];
            --remaining;
            releaseBarrierIfReady(ctx.info_.block);
        } else if (ctx.at_barrier_) {
            releaseBarrierIfReady(ctx.info_.block);
        } else {
            // Suspended on a memory access; wake at its completion time.
            queue.emplace(ctx.ready_cycle_, seq++, ti);
        }
    }

    if (remaining != 0)
        panic("interleaved launch finished with {} threads blocked "
              "(likely a __syncthreads deadlock)",
              remaining);
}

}  // namespace eclsim::simt
