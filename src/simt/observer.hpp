/**
 * @file
 * Passive per-access observation hook.
 *
 * An AccessObserver sees every memory access the engine performs —
 * functional effect and timing untouched — plus a callback at each
 * kernel-launch boundary. It is the recording substrate of the
 * staticrace summary extractor (src/staticrace): a fast-mode probe run
 * with an observer installed captures each ECL_SITE's address stream,
 * access signature, and barrier phase without paying for the vector-
 * clock race detector.
 *
 * Installing an observer disables the hookless fast access path for the
 * launch (MemorySubsystem::hookless), so observed accesses flow through
 * the general performPieces route, piece by piece, with the same
 * (who, req, addr, size) arguments the race detector receives.
 */
#pragma once

#include <string_view>

#include "core/types.hpp"
#include "simt/access.hpp"
#include "simt/race_detector.hpp"

namespace eclsim::simt {

/** Passive observer of kernel launches and memory accesses. */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;

    /**
     * A kernel launch is about to run. @p grid / @p block_size describe
     * the launch shape (1-D grid, flattened block). Launches are
     * strictly serial, so every onAccess until the next onLaunchBegin
     * belongs to this launch.
     */
    virtual void onLaunchBegin(std::string_view kernel, u32 grid,
                               u32 block_size)
    {
        (void)kernel;
        (void)grid;
        (void)block_size;
    }

    /**
     * One executed piece of a request, with the same address/size
     * semantics as RaceDetector::onAccess: @p addr is the piece
     * address, @p size the piece width (full request width for RMWs).
     * who.epoch is the thread's current __syncthreads epoch.
     */
    virtual void onAccess(const ThreadInfo& who, const MemRequest& req,
                          u64 addr, u8 size) = 0;
};

}  // namespace eclsim::simt
