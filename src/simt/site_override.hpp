/**
 * @file
 * Per-site access-mode override table: the repair subsystem's applier.
 *
 * The paper removes each data race by editing the source — turning a
 * plain or volatile access into a cuda::atomic one — and re-measuring.
 * eclsim::repair automates that loop, and this table is the mechanism
 * that applies a proposed conversion *without source edits*: every
 * instrumented kernel access already carries its racecheck SiteId on the
 * MemRequest, so the engine can rewrite the request's AccessMode (and,
 * for the resulting atomic, its memory order and scope) at issue time,
 * exactly as if the kernel author had changed the qualifier.
 *
 * Semantics are strengthening-only, mirroring what a repair is allowed
 * to do:
 *
 *  - plain  -> atomic(order, scope)   (the paper's main conversion)
 *  - volatile -> atomic(order, scope) (volatile does not synchronize)
 *  - RMWs and accesses that are already atomic are left untouched — an
 *    override on an already-atomic site is a no-op, and a repair never
 *    weakens an access.
 *
 * The table extends the EngineOptions::override_atomic_order/scope
 * ablation precedent: it is consulted on BOTH access paths (the hookless
 * fast path and the general performPieces route) because the rewrite
 * happens in Engine::performImmediate / Engine::submitAccess, before
 * routing. A rewritten request inherits every consequence of being
 * atomic: it routes to the L2 atomic units (performance cost), it never
 * tears (MemRequest::pieces() == 1), it reads live values instead of
 * the sweep snapshot, and the happens-before detector excuses
 * atomic/atomic pairs — so "the repaired run is race-silent" falls out
 * of the same machinery that makes the hand-converted codes silent.
 */
#pragma once

#include <vector>

#include "core/logging.hpp"
#include "core/types.hpp"
#include "simt/access.hpp"

namespace eclsim::simt {

/** One per-site conversion: the mode (and, for atomics, order/scope)
 *  the site's requests should execute with. */
struct SiteOverride
{
    AccessMode mode = AccessMode::kAtomic;
    MemoryOrder order = MemoryOrder::kRelaxed;
    Scope scope = Scope::kDevice;
};

/**
 * Dense SiteId -> SiteOverride map (site ids are small and dense; see
 * racecheck::SiteRegistry). Build it once, hand a pointer to
 * EngineOptions::site_overrides, and keep it alive for the engine's
 * lifetime. The table is immutable while engines run.
 */
class SiteOverrideTable
{
  public:
    /** Install (or replace) the override for one site. Site 0 is the
     *  unattributed sentinel and cannot be overridden. */
    void
    set(u32 site, const SiteOverride& override_value)
    {
        ECLSIM_ASSERT(site != 0,
                      "cannot override the unattributed site 0");
        if (site >= present_.size()) {
            present_.resize(site + 1, 0);
            slots_.resize(site + 1);
        }
        if (!present_[site])
            ++count_;
        present_[site] = 1;
        slots_[site] = override_value;
    }

    /** The override for a site, or null when none is installed. */
    const SiteOverride*
    find(u32 site) const
    {
        return site < present_.size() && present_[site] ? &slots_[site]
                                                        : nullptr;
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    void
    clear()
    {
        present_.clear();
        slots_.clear();
        count_ = 0;
    }

    /**
     * Rewrite a request according to the table (strengthening only; see
     * file comment). Requests from sites without an override, RMWs, and
     * already-atomic accesses pass through unchanged.
     */
    void
    apply(MemRequest& req) const
    {
        const SiteOverride* override_value = find(req.site);
        if (override_value == nullptr)
            return;
        if (req.kind == MemOpKind::kRmw ||
            req.mode == AccessMode::kAtomic)
            return;  // already atomic: the conversion is a no-op
        if (override_value->mode != AccessMode::kAtomic)
            return;  // only plain/volatile -> atomic conversions exist
        req.mode = override_value->mode;
        req.order = override_value->order;
        req.scope = override_value->scope;
    }

    /**
     * True when every installed override names the identical target
     * {mode, order, scope}. A warp op carries one site shared by all
     * its lanes, so the warp-batched engine rewrites the op's request
     * template once per warp instead of once per lane; it restricts
     * that lift to warp-uniform tables (the per-warp and per-lane
     * applications are then trivially the same rewrite) and falls back
     * to the per-lane path for heterogeneous tables. Empty tables are
     * vacuously uniform. O(table size); called once per launch.
     */
    bool
    warpUniform() const
    {
        const SiteOverride* first = nullptr;
        for (size_t site = 0; site < present_.size(); ++site) {
            if (!present_[site])
                continue;
            const SiteOverride& o = slots_[site];
            if (first == nullptr) {
                first = &o;
                continue;
            }
            if (o.mode != first->mode || o.order != first->order ||
                o.scope != first->scope)
                return false;
        }
        return true;
    }

    /** True if apply() would change this request. */
    bool
    wouldChange(const MemRequest& req) const
    {
        const SiteOverride* override_value = find(req.site);
        return override_value != nullptr &&
               req.kind != MemOpKind::kRmw &&
               req.mode != AccessMode::kAtomic &&
               override_value->mode == AccessMode::kAtomic;
    }

  private:
    std::vector<SiteOverride> slots_;  ///< indexed by site id
    std::vector<u8> present_;          ///< 1 where slots_ is installed
    size_t count_ = 0;
};

}  // namespace eclsim::simt
