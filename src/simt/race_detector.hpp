/**
 * @file
 * Simulator binding of the eclsim::racecheck happens-before detector.
 *
 * The paper identifies the races in the ECL baselines with Compute
 * Sanitizer and iGuard and then validates the converted codes as race
 * free (Section IV). RaceDetector plays that role inside the simulator.
 * The detection engine itself lives in racecheck::Detector — a
 * FastTrack-style epoch/vector-clock checker with site attribution,
 * scope-aware atomic rules, and write value traces (see
 * racecheck/detector.hpp). This class only binds it to a DeviceMemory
 * arena so conflicting addresses resolve to allocation names.
 *
 * Volatile accesses are deliberately treated as racy: the volatile
 * qualifier prevents compiler caching but does not synchronize, which is
 * one of the paper's central points (Section II-A).
 */
#pragma once

#include "racecheck/detector.hpp"
#include "simt/device_memory.hpp"

namespace eclsim::simt {

// The detector's vocabulary is shared with the racecheck library; the
// engine and the memory subsystem use these names unqualified.
using racecheck::RaceKind;
using racecheck::RaceReport;
using racecheck::ThreadInfo;
using racecheck::raceKindName;

/** The simulator's race detector (see file comment). */
class RaceDetector : public racecheck::Detector
{
  public:
    /**
     * @param memory arena whose allocations name the race reports; must
     *        outlive the detector.
     * @param counters optional profiling registry (sim/race/...).
     */
    explicit RaceDetector(const DeviceMemory& memory,
                          prof::CounterRegistry* counters = nullptr);
};

}  // namespace eclsim::simt
