/**
 * @file
 * Dynamic happens-before data-race detector.
 *
 * The paper identifies the races in the ECL baselines with Compute
 * Sanitizer and iGuard and then validates the converted codes as race
 * free (Section IV). RaceDetector plays that role inside the simulator:
 * it shadows every byte of device memory with the most recent write and
 * read, and reports a race whenever two accesses
 *
 *   - touch overlapping bytes in the same kernel launch,
 *   - come from different threads,
 *   - include at least one write,
 *   - are not both atomic, and
 *   - are not ordered by a block-level barrier (same block, different
 *     __syncthreads epoch).
 *
 * Volatile accesses are deliberately treated as racy: the volatile
 * qualifier prevents compiler caching but does not synchronize, which is
 * one of the paper's central points (Section II-A).
 *
 * Reports are aggregated per (allocation, race kind) so a kernel with
 * millions of conflicting accesses produces a readable summary, the way
 * the authors triage sanitizer output.
 */
#pragma once

#include <string>
#include <vector>

#include "prof/counters.hpp"
#include "simt/access.hpp"
#include "simt/device_memory.hpp"

namespace eclsim::simt {

/** Kind of conflict. */
enum class RaceKind : u8 {
    kReadWrite,
    kWriteWrite,
};

/** Aggregated race report for one allocation. */
struct RaceReport
{
    std::string allocation;
    RaceKind kind = RaceKind::kReadWrite;
    u64 count = 0;           ///< number of conflicting access pairs seen
    u64 first_address = 0;   ///< arena address of the first conflict
    u32 first_thread_a = 0;  ///< earlier access's global thread id
    u32 first_thread_b = 0;  ///< later access's global thread id
};

/** Identity of the thread performing an access. */
struct ThreadInfo
{
    u32 launch = 0;  ///< kernel launch sequence number
    u32 thread = 0;  ///< global thread id within the launch
    u32 block = 0;   ///< block id within the launch
    u16 epoch = 0;   ///< __syncthreads epoch within the block
};

/** Byte-granular happens-before race detector. */
class RaceDetector
{
  public:
    /**
     * @param counters optional profiling registry; when set, the
     *        detector maintains sim/race/checks (accesses examined) and
     *        sim/race/conflicts (conflicting pairs found).
     */
    explicit RaceDetector(const DeviceMemory& memory,
                          prof::CounterRegistry* counters = nullptr);

    /** Record one access piece and check it against the shadow state. */
    void onAccess(const ThreadInfo& who, u64 addr, u8 size, bool is_write,
                  bool is_atomic);

    /** All aggregated reports so far. */
    const std::vector<RaceReport>& reports() const { return reports_; }

    /** Total conflicting pairs across all reports. */
    u64 totalRaces() const;

    /** True if any race was recorded on the named allocation. */
    bool hasRaceOn(const std::string& allocation) const;

    /** Render the reports as human-readable lines. */
    std::string summary() const;

    /** Forget all shadow state and reports. */
    void reset();

  private:
    struct ShadowRecord
    {
        u32 launch = ~u32{0};
        u32 thread = 0;
        u32 block = 0;
        u16 epoch = 0;
        bool atomic = false;
        bool valid = false;
    };

    bool conflicts(const ShadowRecord& prev, const ThreadInfo& who,
                   bool prev_or_now_atomic_pair_ok) const;
    void report(u64 addr, const ShadowRecord& prev, const ThreadInfo& who,
                RaceKind kind);
    void ensureCapacity(u64 end);

    const DeviceMemory& memory_;
    std::vector<ShadowRecord> last_write_;
    std::vector<ShadowRecord> last_read_;
    std::vector<RaceReport> reports_;

    prof::CounterRegistry* prof_ = nullptr;
    prof::CounterId c_checks_ = 0, c_conflicts_ = 0;
};

/** Human-readable name of a race kind. */
const char* raceKindName(RaceKind kind);

}  // namespace eclsim::simt
