#include "simt/frame_pool.hpp"

#include <cstdlib>

#include "core/logging.hpp"

namespace eclsim::simt {

namespace {
thread_local FramePool* t_current_pool = nullptr;
}  // namespace

FramePool::Scope::Scope(FramePool& pool) : prev_(t_current_pool)
{
    t_current_pool = &pool;
}

FramePool::Scope::~Scope()
{
    t_current_pool = prev_;
}

bool
FramePool::scopeActive()
{
    return t_current_pool != nullptr;
}

FramePool::~FramePool()
{
    if (outstanding_ != 0) {
        // Live frames hold headers pointing at this pool; freeing them
        // later would be use-after-free. Engine's member order makes this
        // unreachable — flag the misuse instead of corrupting the heap.
        warn("FramePool destroyed with {} frames outstanding (leaked)",
             outstanding_);
    }
    for (void*& head : free_lists_) {
        while (head != nullptr) {
            void* next = *static_cast<void**>(head);
            std::free(head);
            head = next;
        }
    }
}

u64
FramePool::freeFrames() const
{
    u64 count = 0;
    for (const void* head : free_lists_)
        for (const void* p = head; p != nullptr;
             p = *static_cast<void* const*>(p))
            ++count;
    return count;
}

void*
FramePool::allocate(std::size_t bytes)
{
    const std::size_t bucket =
        bytes == 0 ? 0 : (bytes - 1) / kGranularity;
    if (bucket >= kBuckets) {
        // Oversized frame: bypass the free lists but keep the header so
        // deallocateFrame stays uniform.
        Header* header = static_cast<Header*>(
            std::malloc(kHeaderBytes + bytes));
        ECLSIM_ASSERT(header != nullptr, "frame allocation of {} bytes",
                      bytes);
        header->pool = nullptr;
        header->bucket = 0;
        return reinterpret_cast<char*>(header) + kHeaderBytes;
    }

    void* block = free_lists_[bucket];
    if (block != nullptr) {
        free_lists_[bucket] = *static_cast<void**>(block);
        ++reuses_;
    } else {
        block = std::malloc(kHeaderBytes + (bucket + 1) * kGranularity);
        ECLSIM_ASSERT(block != nullptr, "frame allocation of {} bytes",
                      bytes);
        ++system_allocs_;
    }
    Header* header = static_cast<Header*>(block);
    header->pool = this;
    header->bucket = bucket;
    ++outstanding_;
    return reinterpret_cast<char*>(block) + kHeaderBytes;
}

void
FramePool::release(Header* header) noexcept
{
    // The dead frame's header space becomes the free-list link; read the
    // bucket out before the next-pointer overwrites the header.
    const u64 bucket = header->bucket;
    void* block = header;
    *static_cast<void**>(block) = free_lists_[bucket];
    free_lists_[bucket] = block;
    --outstanding_;
}

void*
FramePool::allocateFrame(std::size_t bytes)
{
    if (t_current_pool != nullptr)
        return t_current_pool->allocate(bytes);
    Header* header =
        static_cast<Header*>(std::malloc(kHeaderBytes + bytes));
    ECLSIM_ASSERT(header != nullptr, "frame allocation of {} bytes", bytes);
    header->pool = nullptr;
    header->bucket = 0;
    return reinterpret_cast<char*>(header) + kHeaderBytes;
}

void
FramePool::deallocateFrame(void* frame) noexcept
{
    if (frame == nullptr)
        return;
    Header* header = reinterpret_cast<Header*>(
        static_cast<char*>(frame) - kHeaderBytes);
    if (header->pool != nullptr)
        header->pool->release(header);
    else
        std::free(header);
}

}  // namespace eclsim::simt
