#include "simt/memory_subsystem.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "simt/observer.hpp"

namespace eclsim::simt {

MemoryCounters&
MemoryCounters::operator+=(const MemoryCounters& other)
{
    loads += other.loads;
    stores += other.stores;
    rmws += other.rmws;
    atomic_accesses += other.atomic_accesses;
    stale_reads += other.stale_reads;
    dram_bytes += other.dram_bytes;
    delayed_stores += other.delayed_stores;
    dup_stores += other.dup_stores;
    dropped_atomics += other.dropped_atomics;
    snapshot_skips += other.snapshot_skips;
    l1 += other.l1;
    l2 += other.l2;
    return *this;
}

MemorySubsystem::MemorySubsystem(const GpuSpec& spec, DeviceMemory& memory,
                                 const MemoryOptions& options,
                                 RaceDetector* detector,
                                 prof::CounterRegistry* counters,
                                 PerturbationHooks* perturb,
                                 AccessObserver* observer)
    : spec_(spec), memory_(memory), options_(options), detector_(detector),
      l2_cache_(std::max<u64>(spec.l2_bytes / options.cache_divisor,
                              4096),
                options.line_bytes, options.l2_ways),
      perturb_(perturb), observer_(observer), prof_(counters)
{
    ECLSIM_ASSERT(options_.cache_divisor >= 1, "cache divisor must be >= 1");
    if (prof_) {
        c_load_ = prof_->id("sim/mem/load");
        c_store_ = prof_->id("sim/mem/store");
        c_rmw_ = prof_->id("sim/mem/atomic_rmw");
        c_atomic_ = prof_->id("sim/mem/atomic_access");
        c_volatile_ = prof_->id("sim/mem/volatile_access");
        c_stale_ = prof_->id("sim/mem/stale_read");
        c_l1_hit_ = prof_->id("sim/mem/l1_hit");
        c_l1_miss_ = prof_->id("sim/mem/l1_miss");
        c_l2_hit_ = prof_->id("sim/mem/l2_hit");
        c_l2_miss_ = prof_->id("sim/mem/l2_miss");
        c_dram_ = prof_->id("sim/mem/dram_access");
        c_atomic_block_ = prof_->id("sim/mem/atomic_block_scope");
        c_bat_ops_ = prof_->id("sim/mem/batch/warp_ops");
        c_bat_lines_ = prof_->id("sim/mem/batch/line_probes");
        c_bat_coal_ = prof_->id("sim/mem/batch/lanes_coalesced");
        if (perturb_) {
            c_delayed_ = prof_->id("sim/perturb/store_delayed");
            c_dup_ = prof_->id("sim/perturb/store_duplicated");
            c_dropped_ = prof_->id("sim/perturb/atomic_dropped");
            c_skip_ = prof_->id("sim/perturb/snapshot_skip");
        }
    }
    l1_caches_.reserve(spec_.num_sms);
    for (u32 sm = 0; sm < spec_.num_sms; ++sm)
        l1_caches_.emplace_back(
            std::max<u64>(spec_.l1_bytes / options_.cache_divisor, 1024),
            options_.line_bytes, options_.l1_ways);
    // bytes/cycle = (GB/s) / (GHz) = bytes per clock of the core clock.
    dram_bytes_per_cycle_ = spec_.mem_bandwidth_gbps / spec_.clock_ghz;
    // log2(line_bytes): same-line run detection in performWarp shifts
    // instead of dividing, mirroring CacheModel's line index.
    while ((u32{1} << line_shift_) < options_.line_bytes)
        ++line_shift_;

}

void
MemorySubsystem::beginLaunch()
{
    // The launch-0 snapshot is unconditional: the kernel must observe the
    // host's uploads. Later refreshes may be skipped by the hooks, which
    // keeps kSweepSnapshot readers on a stale snapshot across launches —
    // an amplified version of the compiler value caching the paper's MIS
    // discussion hinges on.
    const bool skip_refresh = perturb_ && launch_index_ > 0 &&
                              !perturb_->refreshSnapshot(launch_index_);
    if (options_.model_sweep_visibility && !skip_refresh)
        memory_.snapshotSweepAllocations();
    ++launch_index_;
    counters_ = {};
    if (skip_refresh && memory_.hasSnapshotAllocs()) {
        ++counters_.snapshot_skips;
        if (prof_)
            prof_->add(c_skip_);
    }
    for (CacheModel& l1 : l1_caches_)
        l1.resetStats();
    l2_cache_.resetStats();
    sweep_check_live_ =
        options_.model_sweep_visibility && memory_.hasSnapshotAllocs();
}

void
MemorySubsystem::endLaunch()
{
    for (const PendingStore& entry : pending_)
        releasePending(entry);
    pending_.clear();
}

void
MemorySubsystem::releasePending(const PendingStore& entry)
{
    memory_.storeLive(entry.addr, entry.size, entry.bits);
    if (memory_.hasSnapshotAllocs() &&
        memory_.allocationAt(entry.addr).visibility ==
            Visibility::kSweepSnapshot) {
        memory_.noteWriter(entry.addr, entry.size, entry.thread);
    }
}

void
MemorySubsystem::drainPending()
{
    if (pending_.empty())
        return;
    size_t kept = 0;
    for (PendingStore& entry : pending_) {
        if (entry.release_at <= access_clock_)
            releasePending(entry);
        else
            pending_[kept++] = entry;
    }
    pending_.resize(kept);
}

void
MemorySubsystem::cancelOverlapping(u32 thread, u64 addr, u8 size)
{
    if (pending_.empty())
        return;
    size_t kept = 0;
    for (PendingStore& entry : pending_) {
        const bool overlaps = entry.thread == thread &&
                              entry.addr < addr + size &&
                              addr < entry.addr + entry.size;
        if (!overlaps)
            pending_[kept++] = entry;
    }
    pending_.resize(kept);
}

void
MemorySubsystem::flushOverlappingOwn(u32 thread, u64 addr, u8 size)
{
    if (pending_.empty())
        return;
    size_t kept = 0;
    for (PendingStore& entry : pending_) {
        const bool overlaps = entry.thread == thread &&
                              entry.addr < addr + size &&
                              addr < entry.addr + entry.size;
        if (overlaps)
            releasePending(entry);
        else
            pending_[kept++] = entry;
    }
    pending_.resize(kept);
}

u64
MemorySubsystem::overlayPending(u32 thread, u64 addr, u8 size,
                                u64 bits) const
{
    // Program order: a thread always observes its own buffered stores.
    // Entries are scanned oldest-first so a newer buffered store to the
    // same byte wins.
    for (const PendingStore& entry : pending_) {
        if (entry.thread != thread)
            continue;
        for (u8 i = 0; i < entry.size; ++i) {
            const u64 a = entry.addr + i;
            if (a < addr || a >= addr + size)
                continue;
            const u64 shift = 8 * (a - addr);
            bits = (bits & ~(u64{0xff} << shift)) |
                   (((entry.bits >> (8 * i)) & 0xff) << shift);
        }
    }
    return bits;
}

MemoryCounters
MemorySubsystem::launchCounters() const
{
    MemoryCounters out = counters_;
    for (const CacheModel& l1 : l1_caches_)
        out.l1 += l1.stats();
    out.l2 = l2_cache_.stats();
    return out;
}



u64
MemorySubsystem::routeTiming(u32 sm, u64 addr, const MemRequest& req,
                             bool is_store)
{
    // prof_ may still be null here; the general path tolerates either.
    if (prof_)
        return routeTimingImpl<true>(sm, addr, req, is_store);
    return routeTimingImpl<false>(sm, addr, req, is_store);
}

MemorySubsystem::PieceResult
MemorySubsystem::performPieces(const ThreadInfo& who, u32 sm,
                               const MemRequest& req, u32 first, u32 last)
{
    ECLSIM_ASSERT(sm < l1_caches_.size(), "SM {} out of range", sm);
    const u32 total_pieces = req.pieces();
    ECLSIM_ASSERT(first < last && last <= total_pieces,
                  "piece range [{}, {}) of {}", first, last, total_pieces);
    const u8 piece_size =
        total_pieces == 1 ? req.size : static_cast<u8>(4);
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;

    PieceResult result;
    for (u32 piece = first; piece < last; ++piece) {
        const u64 addr = req.addr + static_cast<u64>(piece) * piece_size;

        if (perturb_) {
            // The write buffer drains on the engine's global access
            // clock: every access is an opportunity for buffered racy
            // stores (and duplicate redeliveries) to become visible.
            ++access_clock_;
            drainPending();
            // Atomics synchronize with the issuing thread's own prior
            // stores (program order); racy loads overlay them instead,
            // keeping the value hidden from other threads.
            if (is_atomic)
                flushOverlappingOwn(who.thread, addr,
                                    req.kind == MemOpKind::kRmw
                                        ? req.size
                                        : piece_size);
        }

        // Functional effect. det_value/det_old feed the race detector's
        // per-site write value traces (classifier evidence).
        u64 det_value = 0, det_old = 0;
        if (req.kind == MemOpKind::kLoad) {
            u64 bits;
            // Delayed visibility applies to every non-atomic read of a
            // kSweepSnapshot allocation — including volatile ones: the
            // volatile qualifier does not synchronize, which is one of
            // the paper's central points (it models the compiler's
            // latitude over racy reads, not the cache path).
            const bool delayed =
                req.mode != AccessMode::kAtomic &&
                options_.model_sweep_visibility &&
                memory_.hasSnapshotAllocs() &&
                memory_.allocationAt(addr).visibility ==
                    Visibility::kSweepSnapshot;
            if (delayed) {
                bits = memory_.loadSnapshotAware(addr, piece_size,
                                                 who.thread);
                ++counters_.stale_reads;
                if (prof_)
                    prof_->add(c_stale_);
            } else {
                bits = memory_.loadLive(addr, piece_size);
            }
            if (perturb_ && !pending_.empty() &&
                req.mode != AccessMode::kAtomic)
                bits = overlayPending(who.thread, addr, piece_size, bits);
            det_value = det_old = bits;
            result.value_bits |= bits << (8 * piece_size * piece);
            ++counters_.loads;
            if (prof_)
                prof_->add(c_load_);
        } else if (req.kind == MemOpKind::kStore) {
            const u64 bits =
                (req.value >> (8 * piece_size * piece)) &
                (piece_size == 8 ? ~u64{0}
                                 : ((u64{1} << (8 * piece_size)) - 1));
            if (detector_)
                det_old = memory_.loadLive(addr, piece_size);
            det_value = bits;
            bool performed = false;
            if (perturb_ && req.mode != AccessMode::kAtomic) {
                // A newer store to the same bytes supersedes any of the
                // thread's still-buffered ones (collapsed stores).
                cancelOverlapping(who.thread, addr, piece_size);
                const u32 delay =
                    pending_.size() < kMaxPendingStores
                        ? perturb_->delayStoreAccesses(who, req)
                        : 0;
                if (delay > 0) {
                    pending_.push_back({who.thread, addr, piece_size,
                                        bits, access_clock_ + delay});
                    ++counters_.delayed_stores;
                    if (prof_)
                        prof_->add(c_delayed_);
                    performed = true;  // buffered; visible later
                }
            } else if (perturb_ && perturb_->dropAtomicUpdate(who, req)) {
                ++counters_.dropped_atomics;
                if (prof_)
                    prof_->add(c_dropped_);
                performed = true;  // harmful: the store vanishes
            }
            if (!performed) {
                memory_.storeLive(addr, piece_size, bits);
                if (memory_.hasSnapshotAllocs() &&
                    memory_.allocationAt(addr).visibility ==
                        Visibility::kSweepSnapshot) {
                    memory_.noteWriter(addr, piece_size, who.thread);
                }
                if (perturb_ && req.mode == AccessMode::kPlain &&
                    pending_.size() < kMaxPendingStores) {
                    const u32 dup =
                        perturb_->duplicateStoreAfter(who, req);
                    if (dup > 0) {
                        pending_.push_back({who.thread, addr, piece_size,
                                            bits, access_clock_ + dup});
                        ++counters_.dup_stores;
                        if (prof_)
                            prof_->add(c_dup_);
                    }
                }
            }
            ++counters_.stores;
            if (prof_)
                prof_->add(c_store_);
        } else {
            // Read-modify-write: indivisible, single piece, always live.
            const u64 mask = req.size == 8
                                 ? ~u64{0}
                                 : ((u64{1} << (8 * req.size)) - 1);
            const u64 old_bits = memory_.loadLive(addr, req.size);
            u64 new_bits = old_bits;
            switch (req.rmw) {
              case RmwOp::kAdd:
                new_bits = (old_bits + req.value) & mask;
                break;
              case RmwOp::kMin:
                new_bits = std::min(old_bits, req.value & mask);
                break;
              case RmwOp::kMax:
                new_bits = std::max(old_bits, req.value & mask);
                break;
              case RmwOp::kAnd:
                new_bits = old_bits & req.value;
                break;
              case RmwOp::kOr:
                new_bits = old_bits | req.value;
                break;
              case RmwOp::kExch:
                new_bits = req.value & mask;
                break;
              case RmwOp::kCas:
                if (old_bits == (req.compare & mask))
                    new_bits = req.value & mask;
                break;
              case RmwOp::kAddF:
                new_bits = static_cast<u64>(std::bit_cast<u32>(
                    std::bit_cast<float>(static_cast<u32>(old_bits)) +
                    std::bit_cast<float>(static_cast<u32>(req.value))));
                break;
            }
            if (new_bits != old_bits &&
                perturb_ && perturb_->dropAtomicUpdate(who, req)) {
                // Harmful injection: the update is lost, but the issuing
                // thread saw old_bits — for a CAS whose compare matched,
                // it now wrongly believes the swap took effect.
                ++counters_.dropped_atomics;
                if (prof_)
                    prof_->add(c_dropped_);
            } else if (new_bits != old_bits) {
                memory_.storeLive(addr, req.size, new_bits);
                if (memory_.hasSnapshotAllocs() &&
                    memory_.allocationAt(addr).visibility ==
                        Visibility::kSweepSnapshot) {
                    // An RMW's result is immediately visible to everyone;
                    // mark no single owner so plain readers still see the
                    // snapshot, but the live value is updated.
                    memory_.noteWriter(addr, req.size, who.thread);
                }
            }
            det_value = new_bits;
            det_old = old_bits;
            result.value_bits = old_bits;
            ++counters_.rmws;
            if (prof_)
                prof_->add(c_rmw_);
        }

        // Timing.
        result.latency += routeTiming(
            sm, addr, req,
            req.kind != MemOpKind::kLoad);

        // Race detection: each executed piece is checked independently,
        // so the two halves of a torn 64-bit access are separate events.
        if (detector_) {
            detector_->onAccess(who, req, addr,
                                req.kind == MemOpKind::kRmw ? req.size
                                                            : piece_size,
                                det_value, det_old);
        }
        // Passive observation mirrors the detector's per-piece view.
        if (observer_) {
            observer_->onAccess(who, req, addr,
                                req.kind == MemOpKind::kRmw ? req.size
                                                            : piece_size);
        }
    }
    if (is_atomic) {
        counters_.atomic_accesses += last - first;
        if (prof_)
            prof_->add(c_atomic_, last - first);
    } else if (req.mode == AccessMode::kVolatile && prof_) {
        prof_->add(c_volatile_, last - first);
    }
    if (perturb_)
        result.latency += perturb_->extraAccessLatency(who, req);
    return result;
}


double
MemorySubsystem::dramBoundCycles() const
{
    return static_cast<double>(counters_.dram_bytes) / dram_bytes_per_cycle_;
}

void
MemorySubsystem::clearCaches()
{
    for (CacheModel& l1 : l1_caches_)
        l1.clear();
    l2_cache_.clear();
}

}  // namespace eclsim::simt
