#include "simt/memory_subsystem.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::simt {

MemoryCounters&
MemoryCounters::operator+=(const MemoryCounters& other)
{
    loads += other.loads;
    stores += other.stores;
    rmws += other.rmws;
    atomic_accesses += other.atomic_accesses;
    stale_reads += other.stale_reads;
    dram_bytes += other.dram_bytes;
    l1 += other.l1;
    l2 += other.l2;
    return *this;
}

MemorySubsystem::MemorySubsystem(const GpuSpec& spec, DeviceMemory& memory,
                                 const MemoryOptions& options,
                                 RaceDetector* detector,
                                 prof::CounterRegistry* counters)
    : spec_(spec), memory_(memory), options_(options), detector_(detector),
      l2_cache_(std::max<u64>(spec.l2_bytes / options.cache_divisor,
                              4096),
                options.line_bytes, options.l2_ways),
      prof_(counters)
{
    ECLSIM_ASSERT(options_.cache_divisor >= 1, "cache divisor must be >= 1");
    if (prof_) {
        c_load_ = prof_->id("sim/mem/load");
        c_store_ = prof_->id("sim/mem/store");
        c_rmw_ = prof_->id("sim/mem/atomic_rmw");
        c_atomic_ = prof_->id("sim/mem/atomic_access");
        c_volatile_ = prof_->id("sim/mem/volatile_access");
        c_stale_ = prof_->id("sim/mem/stale_read");
        c_l1_hit_ = prof_->id("sim/mem/l1_hit");
        c_l1_miss_ = prof_->id("sim/mem/l1_miss");
        c_l2_hit_ = prof_->id("sim/mem/l2_hit");
        c_l2_miss_ = prof_->id("sim/mem/l2_miss");
        c_dram_ = prof_->id("sim/mem/dram_access");
        c_atomic_block_ = prof_->id("sim/mem/atomic_block_scope");
    }
    l1_caches_.reserve(spec_.num_sms);
    for (u32 sm = 0; sm < spec_.num_sms; ++sm)
        l1_caches_.emplace_back(
            std::max<u64>(spec_.l1_bytes / options_.cache_divisor, 1024),
            options_.line_bytes, options_.l1_ways);
    // bytes/cycle = (GB/s) / (GHz) = bytes per clock of the core clock.
    dram_bytes_per_cycle_ = spec_.mem_bandwidth_gbps / spec_.clock_ghz;
}

void
MemorySubsystem::beginLaunch()
{
    if (options_.model_sweep_visibility)
        memory_.snapshotSweepAllocations();
    counters_ = {};
    for (CacheModel& l1 : l1_caches_)
        l1.resetStats();
    l2_cache_.resetStats();
}

MemoryCounters
MemorySubsystem::launchCounters() const
{
    MemoryCounters out = counters_;
    for (const CacheModel& l1 : l1_caches_)
        out.l1 += l1.stats();
    out.l2 = l2_cache_.stats();
    return out;
}

u64
MemorySubsystem::orderingCost(MemoryOrder order) const
{
    switch (order) {
      case MemoryOrder::kRelaxed:
        return 0;
      case MemoryOrder::kAcquire:
      case MemoryOrder::kRelease:
        return spec_.fence_cycles / 2;
      case MemoryOrder::kSeqCst:
        return spec_.fence_cycles;
    }
    return 0;
}

u64
MemorySubsystem::routeTiming(u32 sm, u64 addr, const MemRequest& req,
                             bool is_store)
{
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;
    u64 latency = 0;

    if (req.mode == AccessMode::kPlain && req.kind != MemOpKind::kRmw) {
        // Regular path: per-SM L1, then L2, then DRAM.
        if (l1_caches_[sm].access(addr, is_store)) {
            if (prof_)
                prof_->add(c_l1_hit_);
            return spec_.l1_latency;
        }
        if (prof_)
            prof_->add(c_l1_miss_);
        if (l2_cache_.access(addr, is_store)) {
            if (prof_)
                prof_->add(c_l2_hit_);
            return spec_.l2_latency;
        }
        if (prof_) {
            prof_->add(c_l2_miss_);
            prof_->add(c_dram_);
        }
        counters_.dram_bytes += options_.dram_sector_bytes;
        return spec_.dram_latency;
    }

    // Block-scope atomics can resolve inside the SM (L1) — they need not
    // be visible to other blocks until a wider-scope operation.
    if (is_atomic && req.scope == Scope::kBlock &&
        spec_.block_scope_in_sm) {
        l1_caches_[sm].access(addr, is_store);
        if (prof_)
            prof_->add(c_atomic_block_);
        latency = spec_.l1_latency + spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            latency += spec_.rmw_extra;
        latency += orderingCost(req.order);
        return latency;
    }

    // Volatile and device/system-scope atomic accesses bypass the L1 and
    // resolve at the L2 (NVIDIA global atomics execute in the L2 atomic
    // units).
    if (l2_cache_.access(addr, is_store)) {
        if (prof_)
            prof_->add(c_l2_hit_);
        latency = spec_.l2_latency;
    } else {
        if (prof_) {
            prof_->add(c_l2_miss_);
            prof_->add(c_dram_);
        }
        counters_.dram_bytes += options_.dram_sector_bytes;
        latency = spec_.dram_latency;
    }
    if (is_atomic) {
        latency += spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            latency += spec_.rmw_extra;
        latency += orderingCost(req.order);
        if (req.scope == Scope::kSystem)
            latency += spec_.system_scope_extra;
    }
    return latency;
}

MemorySubsystem::PieceResult
MemorySubsystem::performPieces(const ThreadInfo& who, u32 sm,
                               const MemRequest& req, u32 first, u32 last)
{
    ECLSIM_ASSERT(sm < l1_caches_.size(), "SM {} out of range", sm);
    const u32 total_pieces = req.pieces();
    ECLSIM_ASSERT(first < last && last <= total_pieces,
                  "piece range [{}, {}) of {}", first, last, total_pieces);
    const u8 piece_size =
        total_pieces == 1 ? req.size : static_cast<u8>(4);
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;

    PieceResult result;
    for (u32 piece = first; piece < last; ++piece) {
        const u64 addr = req.addr + static_cast<u64>(piece) * piece_size;

        // Functional effect.
        if (req.kind == MemOpKind::kLoad) {
            u64 bits;
            // Delayed visibility applies to every non-atomic read of a
            // kSweepSnapshot allocation — including volatile ones: the
            // volatile qualifier does not synchronize, which is one of
            // the paper's central points (it models the compiler's
            // latitude over racy reads, not the cache path).
            const bool delayed =
                req.mode != AccessMode::kAtomic &&
                options_.model_sweep_visibility &&
                memory_.hasSnapshotAllocs() &&
                memory_.allocationAt(addr).visibility ==
                    Visibility::kSweepSnapshot;
            if (delayed) {
                bits = memory_.loadSnapshotAware(addr, piece_size,
                                                 who.thread);
                ++counters_.stale_reads;
                if (prof_)
                    prof_->add(c_stale_);
            } else {
                bits = memory_.loadLive(addr, piece_size);
            }
            result.value_bits |= bits << (8 * piece_size * piece);
            ++counters_.loads;
            if (prof_)
                prof_->add(c_load_);
        } else if (req.kind == MemOpKind::kStore) {
            const u64 bits =
                (req.value >> (8 * piece_size * piece)) &
                (piece_size == 8 ? ~u64{0}
                                 : ((u64{1} << (8 * piece_size)) - 1));
            memory_.storeLive(addr, piece_size, bits);
            if (memory_.hasSnapshotAllocs() &&
                memory_.allocationAt(addr).visibility ==
                    Visibility::kSweepSnapshot) {
                memory_.noteWriter(addr, piece_size, who.thread);
            }
            ++counters_.stores;
            if (prof_)
                prof_->add(c_store_);
        } else {
            // Read-modify-write: indivisible, single piece, always live.
            const u64 mask = req.size == 8
                                 ? ~u64{0}
                                 : ((u64{1} << (8 * req.size)) - 1);
            const u64 old_bits = memory_.loadLive(addr, req.size);
            u64 new_bits = old_bits;
            switch (req.rmw) {
              case RmwOp::kAdd:
                new_bits = (old_bits + req.value) & mask;
                break;
              case RmwOp::kMin:
                new_bits = std::min(old_bits, req.value & mask);
                break;
              case RmwOp::kMax:
                new_bits = std::max(old_bits, req.value & mask);
                break;
              case RmwOp::kAnd:
                new_bits = old_bits & req.value;
                break;
              case RmwOp::kOr:
                new_bits = old_bits | req.value;
                break;
              case RmwOp::kExch:
                new_bits = req.value & mask;
                break;
              case RmwOp::kCas:
                if (old_bits == (req.compare & mask))
                    new_bits = req.value & mask;
                break;
            }
            if (new_bits != old_bits) {
                memory_.storeLive(addr, req.size, new_bits);
                if (memory_.hasSnapshotAllocs() &&
                    memory_.allocationAt(addr).visibility ==
                        Visibility::kSweepSnapshot) {
                    // An RMW's result is immediately visible to everyone;
                    // mark no single owner so plain readers still see the
                    // snapshot, but the live value is updated.
                    memory_.noteWriter(addr, req.size, who.thread);
                }
            }
            result.value_bits = old_bits;
            ++counters_.rmws;
            if (prof_)
                prof_->add(c_rmw_);
        }

        // Timing.
        result.latency += routeTiming(
            sm, addr, req,
            req.kind != MemOpKind::kLoad);

        // Race detection.
        if (detector_) {
            detector_->onAccess(who, addr,
                                req.kind == MemOpKind::kRmw ? req.size
                                                            : piece_size,
                                req.kind != MemOpKind::kLoad, is_atomic);
        }
    }
    if (is_atomic) {
        counters_.atomic_accesses += last - first;
        if (prof_)
            prof_->add(c_atomic_, last - first);
    } else if (req.mode == AccessMode::kVolatile && prof_) {
        prof_->add(c_volatile_, last - first);
    }
    return result;
}

double
MemorySubsystem::dramBoundCycles() const
{
    return static_cast<double>(counters_.dram_bytes) / dram_bytes_per_cycle_;
}

void
MemorySubsystem::clearCaches()
{
    for (CacheModel& l1 : l1_caches_)
        l1.clear();
    l2_cache_.clear();
}

}  // namespace eclsim::simt
