#include "simt/gpu_spec.hpp"

#include "core/logging.hpp"

namespace eclsim::simt {

namespace {

constexpr u64 kKiB = 1024;
constexpr u64 kMiB = 1024 * kKiB;
constexpr u64 kGiB = 1024 * kMiB;

}  // namespace

GpuSpec
titanV()
{
    GpuSpec spec;
    spec.name = "Titan V";
    spec.architecture = "Volta";
    spec.num_sms = 80;
    spec.cores = 5120;
    spec.l1_bytes = 96 * kKiB;
    spec.l2_bytes = 4608 * kKiB;  // 4.5 MB
    spec.memory_bytes = 12 * kGiB;
    spec.mem_bandwidth_gbps = 652.0;
    spec.clock_ghz = 1.20;
    spec.nvcc_version = "10.1";
    spec.nvcc_flags = "-O3 -arch=sm_70";
    spec.l1_latency = 36;
    spec.l2_latency = 210;
    spec.dram_latency = 470;
    spec.atomic_extra = 15;
    spec.rmw_extra = 60;
    spec.latency_hiding = 10.0;
    spec.issue_cycles = 12;
    return spec;
}

GpuSpec
rtx2070Super()
{
    GpuSpec spec;
    spec.name = "2070 Super";
    spec.architecture = "Turing";
    spec.num_sms = 40;
    spec.cores = 2560;
    spec.l1_bytes = 96 * kKiB;
    spec.l2_bytes = 4 * kMiB;
    spec.memory_bytes = 8 * kGiB;
    spec.mem_bandwidth_gbps = 448.0;
    spec.clock_ghz = 1.61;
    spec.nvcc_version = "12.0";
    spec.nvcc_flags = "-O3 -arch=sm_75";
    // Turing shows the smallest conversion penalty in the paper; its
    // atomic unit sits close to the regular L2 path.
    spec.l1_latency = 42;
    spec.l2_latency = 130;
    spec.dram_latency = 460;
    spec.atomic_extra = 2;
    spec.rmw_extra = 40;
    spec.latency_hiding = 9.0;
    spec.issue_cycles = 18;
    return spec;
}

GpuSpec
a100()
{
    GpuSpec spec;
    spec.name = "A100";
    spec.architecture = "Ampere";
    spec.num_sms = 108;
    spec.cores = 6912;
    spec.l1_bytes = 192 * kKiB;
    spec.l2_bytes = 40 * kMiB;
    spec.memory_bytes = 40 * kGiB;
    spec.mem_bandwidth_gbps = 1555.0;
    spec.clock_ghz = 1.41;
    spec.nvcc_version = "12.0";
    spec.nvcc_flags = "-O3 -arch=sm_80";
    // Ampere's regular path is much faster (bigger L1, higher bandwidth),
    // which makes the fixed atomic-unit cost relatively more expensive.
    spec.l1_latency = 22;
    spec.l2_latency = 190;
    spec.dram_latency = 450;
    spec.atomic_extra = 18;
    spec.rmw_extra = 80;
    spec.latency_hiding = 12.0;
    spec.issue_cycles = 10;
    return spec;
}

GpuSpec
rtx4090()
{
    GpuSpec spec;
    spec.name = "4090";
    spec.architecture = "Ada Lovelace";
    spec.num_sms = 128;
    spec.cores = 16384;
    spec.l1_bytes = 128 * kKiB;
    spec.l2_bytes = 72 * kMiB;
    spec.memory_bytes = 24 * kGiB;
    spec.mem_bandwidth_gbps = 1008.0;
    spec.clock_ghz = 2.23;
    spec.nvcc_version = "12.0";
    spec.nvcc_flags = "-O3 -arch=sm_89";
    // Ada shows the largest slowdown for the converted CC/SCC codes in
    // the paper (Fig. 6), i.e. the costliest atomics relative to the
    // regular path.
    spec.l1_latency = 15;
    spec.l2_latency = 195;
    spec.dram_latency = 440;
    spec.atomic_extra = 15;
    spec.rmw_extra = 100;
    spec.latency_hiding = 12.0;
    spec.issue_cycles = 8;
    return spec;
}

const std::vector<GpuSpec>&
evaluationGpus()
{
    static const std::vector<GpuSpec> gpus = {titanV(), rtx2070Super(),
                                              a100(), rtx4090()};
    return gpus;
}

const GpuSpec&
findGpu(const std::string& name)
{
    for (const GpuSpec& spec : evaluationGpus())
        if (spec.name == name)
            return spec;
    fatal("unknown GPU '{}'", name);
}

}  // namespace eclsim::simt
