/**
 * @file
 * Simulated device (global) memory.
 *
 * DeviceMemory is a byte-addressable arena. Kernels address it through
 * typed DevicePtr<T> handles; the host reads and writes it directly for
 * setup and result collection (analogous to cudaMemcpy).
 *
 * Each allocation carries a Visibility class:
 *
 *  - kLive: plain reads observe the latest stored value (hardware-coherent
 *    global memory).
 *  - kSweepSnapshot: plain (non-volatile, non-atomic) reads observe the
 *    value the location had when the current kernel launch began, unless
 *    the reading thread itself wrote it since. This models the compiler
 *    value-caching the paper blames for delayed update visibility in the
 *    racy MIS baseline ("the compiler may 'optimize' some of these
 *    accesses, thus delaying when updates become visible to other
 *    threads", Section VI-A). Volatile and atomic reads always see live
 *    values, which is precisely why converting the code to atomics speeds
 *    up value propagation.
 */
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "core/logging.hpp"
#include "core/types.hpp"

namespace eclsim::simt {

/** Visibility class of an allocation (see file comment). */
enum class Visibility : u8 {
    kLive,
    kSweepSnapshot,
};

/** Typed handle to device memory (a byte offset into the arena). */
template <typename T>
class DevicePtr
{
  public:
    DevicePtr() = default;
    explicit DevicePtr(u64 addr) : addr_(addr) {}

    /** Byte address of element index. */
    u64 rawAt(u64 index) const { return addr_ + index * sizeof(T); }
    /** Byte address of element 0. */
    u64 raw() const { return addr_; }
    bool null() const { return addr_ == kNullAddr; }

    /** Pointer advanced by count elements. */
    DevicePtr
    operator+(u64 count) const
    {
        return DevicePtr(addr_ + count * sizeof(T));
    }

    /** Reinterpret as a different element type (the paper's Fig. 3 casts
     *  a char array to an int array this way). */
    template <typename U>
    DevicePtr<U>
    cast() const
    {
        return DevicePtr<U>(addr_);
    }

    static constexpr u64 kNullAddr = ~u64{0};

  private:
    u64 addr_ = kNullAddr;
};

/** Metadata of one device allocation. */
struct Allocation
{
    std::string name;
    u64 offset = 0;
    u64 bytes = 0;
    Visibility visibility = Visibility::kLive;
};

/** The simulated global-memory arena. */
class DeviceMemory
{
  public:
    /** @param capacity_bytes maximum arena size (grows up to this). */
    explicit DeviceMemory(u64 capacity_bytes = u64{1} << 31);

    /** Allocate count elements of T, 128-byte aligned, zero-initialized. */
    template <typename T>
    DevicePtr<T>
    alloc(u64 count, std::string name,
          Visibility visibility = Visibility::kLive)
    {
        const u64 offset =
            allocBytes(count * sizeof(T), std::move(name), visibility);
        return DevicePtr<T>(offset);
    }

    /** Number of allocations made so far. */
    size_t numAllocations() const { return allocations_.size(); }
    const Allocation& allocation(size_t index) const;

    /**
     * Index of the allocation containing addr. Inline: this sits on the
     * per-access fast path (the snapshot-visibility test) — a page-table
     * lookup plus at most a short walk across a shared page.
     */
    u32
    allocationIndexAt(u64 addr) const
    {
        const u64 page = addr / kPageBytes;
        ECLSIM_ASSERT(page < page_to_allocation_.size(),
                      "address {} beyond arena", addr);
        u32 index = page_to_allocation_[page];
        ECLSIM_ASSERT(index != kNoAllocation, "address {} unmapped", addr);
        // Walk back if addr belongs to the previous allocation on a
        // shared page.
        while (index > 0 && allocations_[index].offset > addr)
            --index;
        const Allocation& alloc = allocations_[index];
        ECLSIM_ASSERT(addr >= alloc.offset &&
                          addr < alloc.offset + alloc.bytes,
                      "address {} outside every allocation", addr);
        return index;
    }

    /** Allocation containing the given byte address; panics if unmapped. */
    const Allocation&
    allocationAt(u64 addr) const
    {
        return allocations_[allocationIndexAt(addr)];
    }

    u64 size() const { return arena_.size(); }
    bool hasSnapshotAllocs() const { return has_snapshot_allocs_; }

    // --- host-side (untimed) access -------------------------------------

    template <typename T>
    T
    read(DevicePtr<T> ptr, u64 index = 0) const
    {
        T out;
        checkRange(ptr.rawAt(index), sizeof(T));
        std::memcpy(&out, arena_.data() + ptr.rawAt(index), sizeof(T));
        return out;
    }

    template <typename T>
    void
    write(DevicePtr<T> ptr, const T& value)
    {
        checkRange(ptr.raw(), sizeof(T));
        std::memcpy(arena_.data() + ptr.raw(), &value, sizeof(T));
    }

    template <typename T>
    void
    writeAt(DevicePtr<T> ptr, u64 index, const T& value)
    {
        checkRange(ptr.rawAt(index), sizeof(T));
        std::memcpy(arena_.data() + ptr.rawAt(index), &value, sizeof(T));
    }

    /** Copy a host vector into device memory (cudaMemcpy H2D analogue). */
    template <typename T>
    void
    upload(DevicePtr<T> ptr, const std::vector<T>& values)
    {
        checkRange(ptr.raw(), values.size() * sizeof(T));
        std::memcpy(arena_.data() + ptr.raw(), values.data(),
                    values.size() * sizeof(T));
    }

    /** Copy device memory into a host vector (cudaMemcpy D2H analogue). */
    template <typename T>
    std::vector<T>
    download(DevicePtr<T> ptr, u64 count) const
    {
        checkRange(ptr.raw(), count * sizeof(T));
        std::vector<T> out(count);
        std::memcpy(out.data(), arena_.data() + ptr.raw(),
                    count * sizeof(T));
        return out;
    }

    /** Fill count elements with one value (cudaMemset analogue). */
    template <typename T>
    void
    fill(DevicePtr<T> ptr, u64 count, const T& value)
    {
        for (u64 i = 0; i < count; ++i)
            writeAt(ptr, i, value);
    }

    // --- device-side functional access (used by the memory subsystem) ---

    /** Little-endian load of size bytes from the live arena. Inline:
     *  the per-access fast path's functional leaf. The switch turns
     *  each memcpy's length into a compile-time constant — a single
     *  load instruction — where a runtime length would be an actual
     *  libc memcpy call on every simulated access. */
    u64
    loadLive(u64 addr, u8 size) const
    {
        checkRange(addr, size);
        const u8* src = arena_.data() + addr;
        switch (size) {
          case 1:
            return *src;
          case 2: {
            u16 v;
            std::memcpy(&v, src, 2);
            return v;
          }
          case 8: {
            u64 v;
            std::memcpy(&v, src, 8);
            return v;
          }
          default: {
            u32 v;
            std::memcpy(&v, src, 4);
            return v;
          }
        }
    }

    /** Little-endian store of size bytes into the live arena. */
    void
    storeLive(u64 addr, u8 size, u64 value)
    {
        checkRange(addr, size);
        u8* dst = arena_.data() + addr;
        switch (size) {
          case 1:
            *dst = static_cast<u8>(value);
            break;
          case 2: {
            const u16 v = static_cast<u16>(value);
            std::memcpy(dst, &v, 2);
            break;
          }
          case 8:
            std::memcpy(dst, &value, 8);
            break;
          default: {
            const u32 v = static_cast<u32>(value);
            std::memcpy(dst, &v, 4);
            break;
          }
        }
    }
    /**
     * Visibility-aware load: bytes written by reader_thread since the last
     * snapshot come from the live arena, all others from the snapshot.
     * Only meaningful inside a kSweepSnapshot allocation.
     */
    u64 loadSnapshotAware(u64 addr, u8 size, u32 reader_thread) const;
    /** Record reader-visible ownership of freshly written bytes. */
    void noteWriter(u64 addr, u8 size, u32 writer_thread);

    /**
     * Begin-of-launch bookkeeping: copy every kSweepSnapshot allocation's
     * live bytes into the snapshot and forget per-thread write ownership.
     */
    void snapshotSweepAllocations();

  private:
    u64 allocBytes(u64 bytes, std::string name, Visibility visibility);

    void
    checkRange(u64 addr, u64 bytes) const
    {
        ECLSIM_ASSERT(addr + bytes <= arena_.size(),
                      "device access [{}, {}) beyond arena size {}", addr,
                      addr + bytes, arena_.size());
    }

    static constexpr u64 kPageBytes = 4096;
    static constexpr u32 kNoAllocation = ~u32{0};
    static constexpr u32 kNoWriter = ~u32{0};

    u64 capacity_;
    std::vector<u8> arena_;
    std::vector<u8> snapshot_;
    std::vector<u32> writers_;  ///< per-byte writer thread, snapshot allocs
    std::vector<Allocation> allocations_;
    std::vector<u32> page_to_allocation_;
    bool has_snapshot_allocs_ = false;
};

}  // namespace eclsim::simt
