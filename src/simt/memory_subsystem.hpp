/**
 * @file
 * Functional + timing model of the simulated GPU memory hierarchy.
 *
 * Every kernel memory request flows through MemorySubsystem, which
 *  1. executes it functionally against DeviceMemory (including the
 *     sweep-snapshot visibility model for racy plain reads),
 *  2. routes it through the cache hierarchy the way NVIDIA GPUs do —
 *     plain accesses through the per-SM L1, volatile accesses directly to
 *     the L2, atomics to the L2 atomic units with an extra per-generation
 *     cost — and charges the resulting latency, and
 *  3. feeds the optional race detector.
 *
 * This three-way routing is the entire performance story of the paper:
 * converting plain accesses to atomics moves them from the L1 to the L2
 * (the CC/SCC slowdown), converting volatile accesses to atomics only
 * adds the atomic-unit cost (the small GC/MST delta), and atomics also
 * remove the visibility delay (the MIS speedup).
 */
#pragma once

#include <algorithm>
#include <bit>
#include <vector>

#include "prof/counters.hpp"
#include "simt/access.hpp"
#include "simt/cache.hpp"
#include "simt/device_memory.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/perturb.hpp"
#include "simt/race_detector.hpp"

namespace eclsim::simt {

class AccessObserver;

/** Memory-model configuration. */
struct MemoryOptions
{
    /**
     * Divisor applied to the spec's L1/L2 capacities. The harness shrinks
     * the input graphs relative to the paper (graph::kDefaultScaleDivisor),
     * so the caches shrink too in order to keep the working-set-to-cache
     * ratio in a comparable regime. 16 is deliberately milder than the
     * graph divisor because cache lines do not shrink.
     */
    u32 cache_divisor = 16;
    /** Honor kSweepSnapshot visibility for plain reads. */
    bool model_sweep_visibility = true;
    u32 line_bytes = 128;
    u32 l1_ways = 4;
    u32 l2_ways = 8;
    /** Bytes fetched from DRAM per L2 miss (one 32-byte sector). */
    u32 dram_sector_bytes = 32;
};

/** Per-launch traffic counters. */
struct MemoryCounters
{
    u64 loads = 0;
    u64 stores = 0;
    u64 rmws = 0;
    u64 atomic_accesses = 0;  ///< atomic loads + stores + RMWs
    u64 stale_reads = 0;      ///< plain reads served from the sweep snapshot
    u64 dram_bytes = 0;
    // perturbation events (all zero unless PerturbationHooks is installed)
    u64 delayed_stores = 0;   ///< racy stores held in the write buffer
    u64 dup_stores = 0;       ///< racy plain stores redelivered later
    u64 dropped_atomics = 0;  ///< atomic updates discarded (harmful)
    u64 snapshot_skips = 0;   ///< launch-begin snapshot refreshes skipped
    CacheStats l1;  ///< summed over all SMs
    CacheStats l2;

    MemoryCounters& operator+=(const MemoryCounters& other);
};

/**
 * Engine-lifetime counters of the warp-batched access route (see
 * MemorySubsystem::performWarp). `line_probes` counts real tag/LRU
 * searches; `lanes - line_probes` lanes were served from a probe an
 * earlier lane of the same warp op already paid for — the coalescing
 * win the batched mode exists for. Cumulative across launches (unlike
 * MemoryCounters, which reset per launch) so bench/tests can difference
 * them around any window.
 */
struct WarpBatchCounters
{
    u64 warp_ops = 0;         ///< batched warp ops executed
    u64 lanes = 0;            ///< lanes across all batched ops
    u64 line_probes = 0;      ///< first-level tag/LRU probes performed
    u64 coalesced_lanes = 0;  ///< lanes served without their own probe
};

/** The simulated memory hierarchy (see file comment). */
class MemorySubsystem
{
  public:
    /**
     * @param counters optional profiling registry; when set, every
     *        access additionally bumps the hierarchical sim/mem/...
     *        path counters (see eclsim::prof). Null costs nothing.
     * @param perturb optional perturbation hooks (eclsim::chaos); when
     *        set, racy stores may be buffered/duplicated, snapshot
     *        refreshes skipped, and atomic updates dropped per the
     *        hooks' decisions. Null costs one pointer test per access.
     * @param observer optional passive access observer
     *        (simt/observer.hpp); when set, every executed piece is
     *        reported after its functional effect and timing, with the
     *        same address/size arguments the race detector receives.
     *        Null costs one pointer test per access.
     */
    MemorySubsystem(const GpuSpec& spec, DeviceMemory& memory,
                    const MemoryOptions& options, RaceDetector* detector,
                    prof::CounterRegistry* counters = nullptr,
                    PerturbationHooks* perturb = nullptr,
                    AccessObserver* observer = nullptr);

    /** Begin-of-launch bookkeeping (visibility snapshot, counters). */
    void beginLaunch();

    /**
     * End-of-launch bookkeeping: flush every buffered store so the host
     * and the next launch observe final values (kernel boundaries
     * synchronize, even for racy code — cudaDeviceSynchronize orders the
     * kernel's writes before subsequent host reads).
     */
    void endLaunch();

    /** Result of executing one or more pieces of a request. */
    struct PieceResult
    {
        u64 value_bits = 0;  ///< loaded bits (ORed into the final value)
        u64 latency = 0;     ///< cycles for these pieces
    };

    /**
     * Execute pieces [first, last) of a request: functional effect,
     * timing, and race recording. Splitting a two-piece plain 64-bit
     * access across two calls lets the interleaved engine realize genuine
     * word tearing (other threads may run between the calls).
     */
    PieceResult performPieces(const ThreadInfo& who, u32 sm,
                              const MemRequest& req, u32 first, u32 last);

    /**
     * True when no profiling, perturbation, race-detection, or
     * observation hook is installed, i.e. every access would take only
     * the plain functional + timing route. The engine selects the
     * hookless fast path (performFast) once per launch from this.
     */
    bool
    hookless() const
    {
        return prof_ == nullptr && perturb_ == nullptr &&
               detector_ == nullptr && observer_ == nullptr;
    }

    /**
     * Hookless single-piece equivalent of performPieces(who, sm, req, 0, 1).
     * Callable only when hookless() holds and req.pieces() == 1 (the fast
     * engine never splits accesses). Produces bit-identical values,
     * latencies, counters, and cache statistics to the general path —
     * it is the same code minus the hook branches — so simulated results
     * (and the paper tables derived from them) do not depend on which
     * path ran.
     */
    PieceResult performFast(const ThreadInfo& who, u32 sm,
                            const MemRequest& req);

    /**
     * Batched warp entry point (the ExecMode::kWarpBatched hot path):
     * execute one warp op — the request template `tmpl` over the
     * batch's per-lane addr/value/compare arrays — as a whole.
     * Functional effects run in lane order (RMWs to the same address
     * fold sequentially, exactly as the per-lane route would); timing
     * groups *adjacent* lanes that touch the same cache line into runs
     * and pays one tag/LRU probe per run (CacheModel::accessCoalesced),
     * so a fully coalesced 32-lane load costs one L1 search instead of
     * 32. Grouping is adjacency-based rather than a sort: a sort would
     * reorder the probes and break bit-parity with the per-lane path,
     * while for coalesced access patterns — the ones batching exists
     * for — adjacency already *is* sorted order. Values, counters,
     * cache statistics, and charged cycles are bit-identical to issuing
     * the lanes one by one through performFast/performPieces.
     *
     * Callable only when detector/perturb/observer are absent (the
     * engine's batch eligibility guarantees this); the profiling
     * registry is allowed and compiled in via kProf, mirroring
     * routeTimingImpl. `hidden` maps a latency to its hidden-cycle
     * charge (Engine::hiddenCycles); the return value is the total
     * issue + hidden cycles to charge the SM for all lanes.
     */
    template <bool kProf, typename HiddenFn>
    u64 performWarp(u32 sm, const MemRequest& tmpl,
                    const WarpAccessBatch& batch, HiddenFn&& hidden);

    /** Warp-batch route counters (engine lifetime; see the struct). */
    const WarpBatchCounters& warpBatchCounters() const
    {
        return batch_counters_;
    }

    /** Counters accumulated since the last beginLaunch(), including the
     *  cache hit/miss statistics gathered in the same window. */
    MemoryCounters launchCounters() const;

    /** Lower bound on launch cycles from DRAM bandwidth. */
    double dramBoundCycles() const;

    /** Per-SM L1 cache (exposed for tests and the profile bench). */
    const CacheModel& l1Cache(u32 sm) const { return l1_caches_[sm]; }
    const CacheModel& l2Cache() const { return l2_cache_; }

    /** Invalidate all cache contents (used between measurement reps). */
    void clearCaches();

    RaceDetector* raceDetector() { return detector_; }

  private:
    u64
    orderingCost(MemoryOrder order) const
    {
        switch (order) {
          case MemoryOrder::kRelaxed:
            return 0;
          case MemoryOrder::kAcquire:
          case MemoryOrder::kRelease:
            return spec_.fence_cycles / 2;
          case MemoryOrder::kSeqCst:
            return spec_.fence_cycles;
        }
        return 0;
    }

    /** Shared timing route; kProf=false compiles out the profiling
     *  counter bumps for the hookless fast path. One definition serves
     *  both paths so their timing can never drift apart. Defined inline
     *  (below) so the fast path fully inlines into the engine. */
    template <bool kProf>
    u64 routeTimingImpl(u32 sm, u64 addr, const MemRequest& req,
                        bool is_store);
    u64 routeTiming(u32 sm, u64 addr, const MemRequest& req, bool is_store);

    /**
     * Coalesced-run twin of routeTimingImpl: route a run of `run`
     * same-line lanes with one first-level probe, writing the first
     * lane's latency (which may miss) and the remaining lanes' latency
     * (guaranteed hits — the line was just touched) separately. Stats
     * and counters land exactly as `run` sequential routeTimingImpl
     * calls would; see performWarp.
     */
    template <bool kProf>
    void routeTimingCoalesced(u32 sm, u64 addr, const MemRequest& req,
                              bool is_store, u32 run, u64& first_latency,
                              u64& rest_latency);

    /** One racy store held in the simulated write buffer. */
    struct PendingStore
    {
        u32 thread = 0;      ///< issuing thread (program-order overlay)
        u64 addr = 0;
        u8 size = 0;
        u64 bits = 0;
        u64 release_at = 0;  ///< access_clock_ at which it becomes visible
    };

    /** Make one buffered store globally visible. */
    void releasePending(const PendingStore& entry);
    /** Release every buffered store whose time has come. */
    void drainPending();
    /** Cancel same-thread buffered stores overlapping [addr, addr+size)
     *  (a later store to the same bytes supersedes them). */
    void cancelOverlapping(u32 thread, u64 addr, u8 size);
    /** Flush (make visible) same-thread buffered stores overlapping the
     *  range — atomics observe the thread's own prior stores. */
    void flushOverlappingOwn(u32 thread, u64 addr, u8 size);
    /** Patch the thread's own buffered bytes into a loaded value. */
    u64 overlayPending(u32 thread, u64 addr, u8 size, u64 bits) const;

    const GpuSpec& spec_;
    DeviceMemory& memory_;
    MemoryOptions options_;
    RaceDetector* detector_;
    std::vector<CacheModel> l1_caches_;
    CacheModel l2_cache_;
    MemoryCounters counters_;
    WarpBatchCounters batch_counters_;  ///< cumulative (see the struct)
    double dram_bytes_per_cycle_;
    /** log2(options_.line_bytes): performWarp's division-free
     *  adjacent-lane same-line run detection. */
    u32 line_shift_ = 0;

    // perturbation state (inert when perturb_ is null)
    PerturbationHooks* perturb_ = nullptr;
    // passive access observer (inert when null)
    AccessObserver* observer_ = nullptr;
    std::vector<PendingStore> pending_;
    u64 access_clock_ = 0;  ///< memory accesses since engine creation
    u32 launch_index_ = 0;  ///< launches since engine creation
    /**
     * model_sweep_visibility && hasSnapshotAllocs(), refreshed by
     * beginLaunch(). Allocations only happen on the host between
     * launches, so the conjunction is launch-invariant; caching it
     * saves two object loads per fast-path read.
     */
    bool sweep_check_live_ = false;
    static constexpr size_t kMaxPendingStores = 4096;

    // profiling counters (ids valid only when prof_ is non-null)
    prof::CounterRegistry* prof_ = nullptr;
    prof::CounterId c_load_ = 0, c_store_ = 0, c_rmw_ = 0;
    prof::CounterId c_atomic_ = 0, c_volatile_ = 0, c_stale_ = 0;
    prof::CounterId c_l1_hit_ = 0, c_l1_miss_ = 0;
    prof::CounterId c_l2_hit_ = 0, c_l2_miss_ = 0;
    prof::CounterId c_dram_ = 0, c_atomic_block_ = 0;
    prof::CounterId c_delayed_ = 0, c_dup_ = 0, c_dropped_ = 0,
                    c_skip_ = 0;
    // warp-batch route (sim/mem/batch/...)
    prof::CounterId c_bat_ops_ = 0, c_bat_lines_ = 0, c_bat_coal_ = 0;
};

// --- inline hot path ------------------------------------------------------
// routeTimingImpl and performFast are defined here (not in the .cpp) so
// the whole hookless access — functional effect, cache lookup, latency —
// inlines into Engine::performImmediate and from there into the kernel
// coroutine body. This is worth ~2x simulated-access throughput; see
// DESIGN.md §12 and bench/simbench.

template <bool kProf>
u64
MemorySubsystem::routeTimingImpl(u32 sm, u64 addr, const MemRequest& req,
                                 bool is_store)
{
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;
    u64 latency = 0;

    if (req.mode == AccessMode::kPlain && req.kind != MemOpKind::kRmw) {
        // Regular path: per-SM L1, then L2, then DRAM.
        if (l1_caches_[sm].access(addr, is_store)) {
            if constexpr (kProf)
                prof_->add(c_l1_hit_);
            return spec_.l1_latency;
        }
        if constexpr (kProf)
            prof_->add(c_l1_miss_);
        if (l2_cache_.access(addr, is_store)) {
            if constexpr (kProf)
                prof_->add(c_l2_hit_);
            return spec_.l2_latency;
        }
        if constexpr (kProf) {
            prof_->add(c_l2_miss_);
            prof_->add(c_dram_);
        }
        counters_.dram_bytes += options_.dram_sector_bytes;
        return spec_.dram_latency;
    }

    // Block-scope atomics can resolve inside the SM (L1) — they need not
    // be visible to other blocks until a wider-scope operation.
    if (is_atomic && req.scope == Scope::kBlock &&
        spec_.block_scope_in_sm) {
        l1_caches_[sm].access(addr, is_store);
        if constexpr (kProf)
            prof_->add(c_atomic_block_);
        latency = spec_.l1_latency + spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            latency += spec_.rmw_extra;
        latency += orderingCost(req.order);
        return latency;
    }

    // Volatile and device/system-scope atomic accesses bypass the L1 and
    // resolve at the L2 (NVIDIA global atomics execute in the L2 atomic
    // units).
    if (l2_cache_.access(addr, is_store)) {
        if constexpr (kProf)
            prof_->add(c_l2_hit_);
        latency = spec_.l2_latency;
    } else {
        if constexpr (kProf) {
            prof_->add(c_l2_miss_);
            prof_->add(c_dram_);
        }
        counters_.dram_bytes += options_.dram_sector_bytes;
        latency = spec_.dram_latency;
    }
    if (is_atomic) {
        latency += spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            latency += spec_.rmw_extra;
        latency += orderingCost(req.order);
        if (req.scope == Scope::kSystem)
            latency += spec_.system_scope_extra;
    }
    return latency;
}

inline MemorySubsystem::PieceResult
MemorySubsystem::performFast(const ThreadInfo& who, u32 sm,
                             const MemRequest& req)
{
    // Single-piece hookless specialization of performPieces: same
    // functional effects, same counters, same timing — minus the
    // perturbation / profiling / race-detection branches, which
    // hookless() guarantees would all be dead. Any change here must be
    // mirrored in performPieces (the determinism regression test holds
    // the two paths bit-identical).
    ECLSIM_ASSERT(sm < l1_caches_.size(), "SM {} out of range", sm);

    PieceResult result;
    const u64 addr = req.addr;

    if (req.kind == MemOpKind::kLoad) {
        u64 bits;
        const bool delayed =
            req.mode != AccessMode::kAtomic && sweep_check_live_ &&
            memory_.allocationAt(addr).visibility ==
                Visibility::kSweepSnapshot;
        if (delayed) {
            bits = memory_.loadSnapshotAware(addr, req.size, who.thread);
            ++counters_.stale_reads;
        } else {
            bits = memory_.loadLive(addr, req.size);
        }
        result.value_bits = bits;
        ++counters_.loads;
    } else if (req.kind == MemOpKind::kStore) {
        const u64 bits =
            req.value &
            (req.size == 8 ? ~u64{0} : ((u64{1} << (8 * req.size)) - 1));
        memory_.storeLive(addr, req.size, bits);
        if (memory_.hasSnapshotAllocs() &&
            memory_.allocationAt(addr).visibility ==
                Visibility::kSweepSnapshot) [[unlikely]] {
            memory_.noteWriter(addr, req.size, who.thread);
        }
        ++counters_.stores;
    } else {
        // Read-modify-write: indivisible, always live.
        const u64 mask =
            req.size == 8 ? ~u64{0} : ((u64{1} << (8 * req.size)) - 1);
        const u64 old_bits = memory_.loadLive(addr, req.size);
        u64 new_bits = old_bits;
        switch (req.rmw) {
          case RmwOp::kAdd:
            new_bits = (old_bits + req.value) & mask;
            break;
          case RmwOp::kMin:
            new_bits = std::min(old_bits, req.value & mask);
            break;
          case RmwOp::kMax:
            new_bits = std::max(old_bits, req.value & mask);
            break;
          case RmwOp::kAnd:
            new_bits = old_bits & req.value;
            break;
          case RmwOp::kOr:
            new_bits = old_bits | req.value;
            break;
          case RmwOp::kExch:
            new_bits = req.value & mask;
            break;
          case RmwOp::kCas:
            if (old_bits == (req.compare & mask))
                new_bits = req.value & mask;
            break;
          case RmwOp::kAddF:
            new_bits = static_cast<u64>(std::bit_cast<u32>(
                std::bit_cast<float>(static_cast<u32>(old_bits)) +
                std::bit_cast<float>(static_cast<u32>(req.value))));
            break;
        }
        if (new_bits != old_bits) {
            memory_.storeLive(addr, req.size, new_bits);
            if (memory_.hasSnapshotAllocs() &&
                memory_.allocationAt(addr).visibility ==
                    Visibility::kSweepSnapshot) {
                memory_.noteWriter(addr, req.size, who.thread);
            }
        }
        result.value_bits = old_bits;
        ++counters_.rmws;
    }

    result.latency = routeTimingImpl<false>(
        sm, addr, req, req.kind != MemOpKind::kLoad);

    if (req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic)
        ++counters_.atomic_accesses;
    return result;
}

template <bool kProf>
void
MemorySubsystem::routeTimingCoalesced(u32 sm, u64 addr,
                                      const MemRequest& req, bool is_store,
                                      u32 run, u64& first_latency,
                                      u64& rest_latency)
{
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;

    if (req.mode == AccessMode::kPlain && req.kind != MemOpKind::kRmw) {
        // Regular path: per-SM L1, then L2, then DRAM. Only the run's
        // first lane can miss the L1; a miss allocates the line, so the
        // remaining run-1 lanes hit it and never reach the L2 — exactly
        // the per-lane sequence.
        if (l1_caches_[sm].accessCoalesced(addr, is_store, run)) {
            if constexpr (kProf)
                prof_->add(c_l1_hit_, run);
            first_latency = rest_latency = spec_.l1_latency;
            return;
        }
        if constexpr (kProf) {
            prof_->add(c_l1_miss_);
            if (run > 1)
                prof_->add(c_l1_hit_, run - 1);
        }
        rest_latency = spec_.l1_latency;
        if (l2_cache_.access(addr, is_store)) {
            if constexpr (kProf)
                prof_->add(c_l2_hit_);
            first_latency = spec_.l2_latency;
            return;
        }
        if constexpr (kProf) {
            prof_->add(c_l2_miss_);
            prof_->add(c_dram_);
        }
        counters_.dram_bytes += options_.dram_sector_bytes;
        first_latency = spec_.dram_latency;
        return;
    }

    // Block-scope atomics resolve inside the SM; the per-lane route
    // charges l1_latency + extras regardless of hit/miss, so the whole
    // run shares one latency and the probe only feeds the statistics.
    if (is_atomic && req.scope == Scope::kBlock &&
        spec_.block_scope_in_sm) {
        l1_caches_[sm].accessCoalesced(addr, is_store, run);
        if constexpr (kProf)
            prof_->add(c_atomic_block_, run);
        u64 latency = spec_.l1_latency + spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            latency += spec_.rmw_extra;
        latency += orderingCost(req.order);
        first_latency = rest_latency = latency;
        return;
    }

    // Volatile and device/system-scope atomic accesses resolve at the
    // L2; every lane pays the atomic-unit extras, only the first can
    // miss to DRAM.
    u64 extra = 0;
    if (is_atomic) {
        extra = spec_.atomic_extra;
        if (req.kind == MemOpKind::kRmw)
            extra += spec_.rmw_extra;
        extra += orderingCost(req.order);
        if (req.scope == Scope::kSystem)
            extra += spec_.system_scope_extra;
    }
    if (l2_cache_.accessCoalesced(addr, is_store, run)) {
        if constexpr (kProf)
            prof_->add(c_l2_hit_, run);
        first_latency = rest_latency = spec_.l2_latency + extra;
        return;
    }
    if constexpr (kProf) {
        prof_->add(c_l2_miss_);
        prof_->add(c_dram_);
        if (run > 1)
            prof_->add(c_l2_hit_, run - 1);
    }
    counters_.dram_bytes += options_.dram_sector_bytes;
    first_latency = spec_.dram_latency + extra;
    rest_latency = spec_.l2_latency + extra;
}

template <bool kProf, typename HiddenFn>
u64
MemorySubsystem::performWarp(u32 sm, const MemRequest& tmpl,
                             const WarpAccessBatch& batch,
                             HiddenFn&& hidden)
{
    // Warp-batched specialization of `count` performFast calls (or,
    // with kProf, performPieces calls — profiling does not disqualify
    // batching). Functional pass first, timing pass second: the arena
    // and the caches are disjoint state, and within each pass lanes run
    // in lane order, so the interleaving difference vs the per-lane
    // route is unobservable. The engine's eligibility check guarantees
    // no detector/perturb/observer hooks here.
    ECLSIM_ASSERT(sm < l1_caches_.size(), "SM {} out of range", sm);
    ECLSIM_ASSERT(batch.count > 0, "empty warp batch");

    const u32 count = batch.count;
    const u64* addr = batch.addr;
    const u64 mask = tmpl.size == 8
                         ? ~u64{0}
                         : ((u64{1} << (8 * tmpl.size)) - 1);

    // --- functional pass (lane order) --------------------------------
    if (tmpl.kind == MemOpKind::kLoad) {
        const bool check_snapshot =
            tmpl.mode != AccessMode::kAtomic && sweep_check_live_;
        if (!check_snapshot) {
            for (u32 l = 0; l < count; ++l)
                batch.out[l] = memory_.loadLive(addr[l], tmpl.size);
        } else {
            // Per-warp hoist of the visibility lookup: when every lane
            // falls inside lane 0's allocation (the overwhelmingly
            // common case — a warp op reads one array) the
            // allocation-table walk and the visibility decision happen
            // once, not per lane.
            const Allocation& alloc = memory_.allocationAt(addr[0]);
            bool same_alloc = true;
            for (u32 l = 1; l < count; ++l)
                same_alloc &= addr[l] >= alloc.offset &&
                              addr[l] - alloc.offset + tmpl.size <=
                                  alloc.bytes;
            if (same_alloc &&
                alloc.visibility != Visibility::kSweepSnapshot) {
                for (u32 l = 0; l < count; ++l)
                    batch.out[l] = memory_.loadLive(addr[l], tmpl.size);
            } else if (same_alloc) {
                for (u32 l = 0; l < count; ++l)
                    batch.out[l] = memory_.loadSnapshotAware(
                        addr[l], tmpl.size, batch.first_thread + l);
                counters_.stale_reads += count;
                if constexpr (kProf)
                    prof_->add(c_stale_, count);
            } else {
                // Lanes span allocations: decide per lane, exactly like
                // the per-lane route.
                for (u32 l = 0; l < count; ++l) {
                    if (memory_.allocationAt(addr[l]).visibility ==
                        Visibility::kSweepSnapshot) {
                        batch.out[l] = memory_.loadSnapshotAware(
                            addr[l], tmpl.size, batch.first_thread + l);
                        ++counters_.stale_reads;
                        if constexpr (kProf)
                            prof_->add(c_stale_);
                    } else {
                        batch.out[l] =
                            memory_.loadLive(addr[l], tmpl.size);
                    }
                }
            }
        }
        counters_.loads += count;
        if constexpr (kProf)
            prof_->add(c_load_, count);
    } else if (tmpl.kind == MemOpKind::kStore) {
        const bool snap = memory_.hasSnapshotAllocs();
        for (u32 l = 0; l < count; ++l) {
            memory_.storeLive(addr[l], tmpl.size, batch.value[l] & mask);
            if (snap && memory_.allocationAt(addr[l]).visibility ==
                            Visibility::kSweepSnapshot) [[unlikely]] {
                memory_.noteWriter(addr[l], tmpl.size,
                                   batch.first_thread + l);
            }
        }
        counters_.stores += count;
        if constexpr (kProf)
            prof_->add(c_store_, count);
    } else {
        // Read-modify-write: lanes fold sequentially in lane order, so
        // same-address RMWs within the warp observe each other exactly
        // as the per-lane route would.
        const bool snap = memory_.hasSnapshotAllocs();
        for (u32 l = 0; l < count; ++l) {
            const u64 old_bits = memory_.loadLive(addr[l], tmpl.size);
            const u64 operand = batch.value[l];
            u64 new_bits = old_bits;
            switch (tmpl.rmw) {
              case RmwOp::kAdd:
                new_bits = (old_bits + operand) & mask;
                break;
              case RmwOp::kMin:
                new_bits = std::min(old_bits, operand & mask);
                break;
              case RmwOp::kMax:
                new_bits = std::max(old_bits, operand & mask);
                break;
              case RmwOp::kAnd:
                new_bits = old_bits & operand;
                break;
              case RmwOp::kOr:
                new_bits = old_bits | operand;
                break;
              case RmwOp::kExch:
                new_bits = operand & mask;
                break;
              case RmwOp::kCas:
                if (old_bits == (batch.compare[l] & mask))
                    new_bits = operand & mask;
                break;
              case RmwOp::kAddF:
                new_bits = static_cast<u64>(std::bit_cast<u32>(
                    std::bit_cast<float>(static_cast<u32>(old_bits)) +
                    std::bit_cast<float>(static_cast<u32>(operand))));
                break;
            }
            if (new_bits != old_bits) {
                memory_.storeLive(addr[l], tmpl.size, new_bits);
                if (snap && memory_.allocationAt(addr[l]).visibility ==
                                Visibility::kSweepSnapshot) {
                    memory_.noteWriter(addr[l], tmpl.size,
                                       batch.first_thread + l);
                }
            }
            batch.out[l] = old_bits;
        }
        counters_.rmws += count;
        if constexpr (kProf)
            prof_->add(c_rmw_, count);
    }

    // --- timing pass: adjacent same-line runs, one probe per run -----
    const bool is_store = tmpl.kind != MemOpKind::kLoad;
    const u64 issue = spec_.issue_cycles;
    u64 charged = 0;
    u32 probes = 0;
    u32 l = 0;
    while (l < count) {
        const u64 line = addr[l] >> line_shift_;
        u32 end = l + 1;
        while (end < count && (addr[end] >> line_shift_) == line)
            ++end;
        const u32 run = end - l;
        u64 first_latency = 0, rest_latency = 0;
        routeTimingCoalesced<kProf>(sm, addr[l], tmpl, is_store, run,
                                    first_latency, rest_latency);
        charged += issue + hidden(first_latency);
        if (run > 1)
            charged += static_cast<u64>(run - 1) *
                       (issue + hidden(rest_latency));
        ++probes;
        l = end;
    }

    ++batch_counters_.warp_ops;
    batch_counters_.lanes += count;
    batch_counters_.line_probes += probes;
    batch_counters_.coalesced_lanes += count - probes;
    if constexpr (kProf) {
        prof_->add(c_bat_ops_);
        prof_->add(c_bat_lines_, probes);
        prof_->add(c_bat_coal_, count - probes);
    }

    const bool is_atomic =
        tmpl.kind == MemOpKind::kRmw || tmpl.mode == AccessMode::kAtomic;
    if (is_atomic) {
        counters_.atomic_accesses += count;
        if constexpr (kProf)
            prof_->add(c_atomic_, count);
    } else if (tmpl.mode == AccessMode::kVolatile) {
        if constexpr (kProf)
            prof_->add(c_volatile_, count);
    }
    return charged;
}

}  // namespace eclsim::simt
