/**
 * @file
 * Coroutine type for simulated device threads.
 *
 * Each GPU thread of a kernel launch is one C++20 coroutine returning
 * Task. Memory operations and __syncthreads() are awaitables: in the
 * engine's fast mode they complete inline; in interleaved mode they
 * suspend the thread so the scheduler can interleave warps at memory-
 * access granularity (which is what makes data races and word tearing
 * actually observable in tests).
 */
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "simt/frame_pool.hpp"

namespace eclsim::simt {

/** A lazily-started device-thread coroutine. */
class Task
{
  public:
    struct promise_type
    {
        /**
         * Coroutine frames go through the engine's FramePool: inside a
         * launch (FramePool::Scope installed) freed frames are recycled
         * across blocks and launches instead of hitting malloc/free once
         * per simulated thread; outside any scope this degrades to plain
         * malloc. Deallocation reads the frame's own header, so it is
         * always returned to wherever it came from.
         */
        static void*
        operator new(std::size_t size)
        {
            return FramePool::allocateFrame(size);
        }
        static void
        operator delete(void* frame) noexcept
        {
            FramePool::deallocateFrame(frame);
        }
        static void
        operator delete(void* frame, std::size_t) noexcept
        {
            FramePool::deallocateFrame(frame);
        }

        Task
        get_return_object() noexcept
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void
        unhandled_exception() noexcept
        {
            // Device code must not throw; treat it as a simulator bug.
            std::terminate();
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle handle) : handle_(handle) {}
    Task(Task&& other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}
    Task&
    operator=(Task&& other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return !handle_ || handle_.done(); }

    /** Run the thread until its next suspension point (or completion). */
    void
    resume()
    {
        if (handle_ && !handle_.done())
            handle_.resume();
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

}  // namespace eclsim::simt
