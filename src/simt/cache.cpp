#include "simt/cache.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::simt {

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    load_hits += other.load_hits;
    load_misses += other.load_misses;
    store_hits += other.store_hits;
    store_misses += other.store_misses;
    return *this;
}

CacheModel::CacheModel(u64 capacity_bytes, u32 line_bytes, u32 ways)
    : line_bytes_(line_bytes), ways_(ways)
{
    ECLSIM_ASSERT(line_bytes_ > 0 && (line_bytes_ & (line_bytes_ - 1)) == 0,
                  "line size {} must be a power of two", line_bytes_);
    ECLSIM_ASSERT(ways_ > 0, "cache needs at least one way");
    const u64 lines = std::max<u64>(capacity_bytes / line_bytes_, ways_);
    num_sets_ = static_cast<u32>(std::max<u64>(lines / ways_, 1));
    // Round sets down to a power of two for cheap indexing.
    while (num_sets_ & (num_sets_ - 1))
        num_sets_ &= num_sets_ - 1;
    lines_.resize(static_cast<size_t>(num_sets_) * ways_);
}

bool
CacheModel::access(u64 addr, bool is_store)
{
    const u64 line_addr = addr / line_bytes_;
    const u32 set = static_cast<u32>(line_addr & (num_sets_ - 1));
    const u64 tag = line_addr >> 1;  // includes set bits; uniqueness is all
                                     // that matters for hit detection
    Line* base = &lines_[static_cast<size_t>(set) * ways_];
    ++tick_;

    for (u32 w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].lru = tick_;
            if (is_store)
                ++stats_.store_hits;
            else
                ++stats_.load_hits;
            return true;
        }
    }
    (void)tag;
    // Miss: replace the LRU way (write-allocate for stores too).
    Line* victim = base;
    for (u32 w = 1; w < ways_; ++w)
        if (!base[w].valid || base[w].lru < victim->lru ||
            (victim->valid && !base[w].valid))
            victim = &base[w];
    victim->valid = true;
    victim->tag = line_addr;
    victim->lru = tick_;
    if (is_store)
        ++stats_.store_misses;
    else
        ++stats_.load_misses;
    return false;
}

bool
CacheModel::contains(u64 addr) const
{
    const u64 line_addr = addr / line_bytes_;
    const u32 set = static_cast<u32>(line_addr & (num_sets_ - 1));
    const Line* base = &lines_[static_cast<size_t>(set) * ways_];
    for (u32 w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    return false;
}

void
CacheModel::clear()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
}

}  // namespace eclsim::simt
