#include "simt/cache.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace eclsim::simt {

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    load_hits += other.load_hits;
    load_misses += other.load_misses;
    store_hits += other.store_hits;
    store_misses += other.store_misses;
    return *this;
}

CacheModel::CacheModel(u64 capacity_bytes, u32 line_bytes, u32 ways)
    : line_bytes_(line_bytes), ways_(ways)
{
    ECLSIM_ASSERT(line_bytes_ > 0 && (line_bytes_ & (line_bytes_ - 1)) == 0,
                  "line size {} must be a power of two", line_bytes_);
    ECLSIM_ASSERT(ways_ > 0, "cache needs at least one way");
    const u64 lines = std::max<u64>(capacity_bytes / line_bytes_, ways_);
    num_sets_ = static_cast<u32>(std::max<u64>(lines / ways_, 1));
    // Round sets down to a power of two for cheap indexing.
    while (num_sets_ & (num_sets_ - 1))
        num_sets_ &= num_sets_ - 1;
    line_shift_ = 0;
    while ((u32{1} << line_shift_) < line_bytes_)
        ++line_shift_;
    tags_.assign(static_cast<size_t>(num_sets_) * ways_, kInvalidTag);
    lru_.assign(static_cast<size_t>(num_sets_) * ways_, 0);
}

void
CacheModel::clear()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(lru_.begin(), lru_.end(), u64{0});
}

}  // namespace eclsim::simt
