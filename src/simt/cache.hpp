/**
 * @file
 * Set-associative LRU cache model.
 *
 * Used for the per-SM L1 caches and the device-wide L2. The paper's core
 * performance explanation is a cache-path effect: "the baseline [CC] code
 * has a much higher L1 hit rate for both loads and stores, which explains
 * the performance difference" (Section VI-A). CacheModel exposes separate
 * load/store hit counters so the profile bench can reproduce that
 * comparison.
 */
#pragma once

#include <vector>

#include "core/types.hpp"

namespace eclsim::simt {

/** Hit/miss counters of one cache. */
struct CacheStats
{
    u64 load_hits = 0;
    u64 load_misses = 0;
    u64 store_hits = 0;
    u64 store_misses = 0;

    u64 hits() const { return load_hits + store_hits; }
    u64 misses() const { return load_misses + store_misses; }
    double
    hitRate() const
    {
        const u64 total = hits() + misses();
        return total == 0 ? 0.0 : static_cast<double>(hits()) /
                                      static_cast<double>(total);
    }
    double
    loadHitRate() const
    {
        const u64 total = load_hits + load_misses;
        return total == 0 ? 0.0 : static_cast<double>(load_hits) /
                                      static_cast<double>(total);
    }

    CacheStats& operator+=(const CacheStats& other);
};

/** A set-associative cache with LRU replacement and write-allocate. */
class CacheModel
{
  public:
    /**
     * @param capacity_bytes total capacity (rounded down to full sets)
     * @param line_bytes cache-line size (power of two)
     * @param ways associativity
     */
    CacheModel(u64 capacity_bytes, u32 line_bytes, u32 ways);

    /** Look up addr; allocates the line on a miss. Returns true on hit. */
    bool access(u64 addr, bool is_store);

    /** Probe without counting or allocating. */
    bool contains(u64 addr) const;

    /** Invalidate all lines (between launches if desired). */
    void clear();

    const CacheStats& stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    u32 lineBytes() const { return line_bytes_; }
    u32 numSets() const { return num_sets_; }
    u32 ways() const { return ways_; }

  private:
    struct Line
    {
        u64 tag = ~u64{0};
        u64 lru = 0;  ///< larger = more recently used
        bool valid = false;
    };

    u32 line_bytes_;
    u32 ways_;
    u32 num_sets_;
    u64 tick_ = 0;
    std::vector<Line> lines_;  ///< num_sets_ * ways_, set-major
    CacheStats stats_;
};

}  // namespace eclsim::simt
