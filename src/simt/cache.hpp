/**
 * @file
 * Set-associative LRU cache model.
 *
 * Used for the per-SM L1 caches and the device-wide L2. The paper's core
 * performance explanation is a cache-path effect: "the baseline [CC] code
 * has a much higher L1 hit rate for both loads and stores, which explains
 * the performance difference" (Section VI-A). CacheModel exposes separate
 * load/store hit counters so the profile bench can reproduce that
 * comparison.
 */
#pragma once

#include <vector>

#include "core/types.hpp"

namespace eclsim::simt {

/** Hit/miss counters of one cache. */
struct CacheStats
{
    u64 load_hits = 0;
    u64 load_misses = 0;
    u64 store_hits = 0;
    u64 store_misses = 0;

    u64 hits() const { return load_hits + store_hits; }
    u64 misses() const { return load_misses + store_misses; }
    double
    hitRate() const
    {
        const u64 total = hits() + misses();
        return total == 0 ? 0.0 : static_cast<double>(hits()) /
                                      static_cast<double>(total);
    }
    double
    loadHitRate() const
    {
        const u64 total = load_hits + load_misses;
        return total == 0 ? 0.0 : static_cast<double>(load_hits) /
                                      static_cast<double>(total);
    }

    CacheStats& operator+=(const CacheStats& other);
};

/** A set-associative cache with LRU replacement and write-allocate. */
class CacheModel
{
  public:
    /**
     * @param capacity_bytes total capacity (rounded down to full sets)
     * @param line_bytes cache-line size (power of two)
     * @param ways associativity
     */
    CacheModel(u64 capacity_bytes, u32 line_bytes, u32 ways);

    /**
     * Look up addr; allocates the line on a miss. Returns true on hit.
     *
     * Inline and division-free: the set index is (addr >> line_shift) &
     * (num_sets - 1) with both factors precomputed in the constructor —
     * the same function as the original addr / line_bytes % num_sets,
     * so every hit-rate statistic is unchanged. This runs once or twice
     * per simulated memory access and is the simulator's hottest leaf.
     */
    bool
    access(u64 addr, bool is_store)
    {
        // count == 1 folds at compile time: identical codegen to the
        // pre-coalescing single-access body, one definition for both.
        return accessCoalesced(addr, is_store, 1);
    }

    /**
     * Exactly equivalent to `count` back-to-back access(addr, is_store)
     * calls — one tag search instead of `count`. The warp-batched
     * engine's coalesced probe: when a run of adjacent lanes touches the
     * same 128-byte line, only the first lane's access can miss; the
     * remaining count-1 find the line just touched (nothing intervenes
     * within a warp op) and are guaranteed hits. Stats, tick, and LRU
     * state land bit-identically to the per-lane sequence: the probed
     * way's recency becomes tick_ + count, exactly where count repeated
     * touches would leave it. Returns the FIRST access's hit/miss.
     */
    bool
    accessCoalesced(u64 addr, bool is_store, u32 count)
    {
        const u64 line_addr = addr >> line_shift_;
        const u32 set = static_cast<u32>(line_addr & (num_sets_ - 1));
        const size_t base = static_cast<size_t>(set) * ways_;
        u64* tags = &tags_[base];
        tick_ += count;

        // The default L1 is 4-way; compare its whole (32-byte,
        // contiguous) tag row without loop-carried control flow.
        if (ways_ == 4) {
            const bool h0 = tags[0] == line_addr;
            const bool h1 = tags[1] == line_addr;
            const bool h2 = tags[2] == line_addr;
            const bool h3 = tags[3] == line_addr;
            if (h0 | h1 | h2 | h3) {
                const u32 w = h0 ? 0 : (h1 ? 1 : (h2 ? 2 : 3));
                lru_[base + w] = tick_;
                if (is_store)
                    stats_.store_hits += count;
                else
                    stats_.load_hits += count;
                return true;
            }
        } else {
            for (u32 w = 0; w < ways_; ++w) {
                if (tags[w] == line_addr) {
                    lru_[base + w] = tick_;
                    if (is_store)
                        stats_.store_hits += count;
                    else
                        stats_.load_hits += count;
                    return true;
                }
            }
        }
        // Miss: replace the LRU way (write-allocate for stores too).
        // Invalid lines carry lru == 0 while every filled line's lru is
        // >= 1, so min-lru selection fills empty ways before evicting —
        // the same tag leaves the set as with an explicit valid flag.
        // Of a coalesced run only the first access misses; the other
        // count-1 re-touch the just-allocated line.
        const u64* lru = &lru_[base];
        u32 victim = 0;
        for (u32 w = 1; w < ways_; ++w)
            if (lru[w] < lru[victim])
                victim = w;
        tags[victim] = line_addr;
        lru_[base + victim] = tick_;
        if (is_store) {
            ++stats_.store_misses;
            stats_.store_hits += count - 1;
        } else {
            ++stats_.load_misses;
            stats_.load_hits += count - 1;
        }
        return false;
    }

    /** Probe without counting or allocating. */
    bool
    contains(u64 addr) const
    {
        const u64 line_addr = addr >> line_shift_;
        const u32 set = static_cast<u32>(line_addr & (num_sets_ - 1));
        const u64* tags = &tags_[static_cast<size_t>(set) * ways_];
        for (u32 w = 0; w < ways_; ++w)
            if (tags[w] == line_addr)
                return true;
        return false;
    }

    /** Invalidate all lines (between launches if desired). */
    void clear();

    const CacheStats& stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    u32 lineBytes() const { return line_bytes_; }
    u32 numSets() const { return num_sets_; }
    u32 ways() const { return ways_; }

  private:
    /**
     * Structure-of-arrays line storage: a 4-way set's tags are 32
     * contiguous bytes, so the hit probe touches one host cache line.
     * Validity is encoded in the tag: kInvalidTag can never equal a
     * real line address (the arena is far smaller than 2^64 lines). An
     * invalid line's lru of 0 is below every filled line's (tick_
     * starts at 1), which preserves the fill-empty-ways-first victim
     * choice of an explicit valid flag.
     */
    static constexpr u64 kInvalidTag = ~u64{0};

    u32 line_bytes_;
    u32 line_shift_ = 0;  ///< log2(line_bytes_); division-free line index
    u32 ways_;
    u32 num_sets_;
    u64 tick_ = 0;
    std::vector<u64> tags_;  ///< num_sets_ * ways_, set-major
    std::vector<u64> lru_;   ///< larger = more recent; 0 = never filled
    CacheStats stats_;
};

}  // namespace eclsim::simt
