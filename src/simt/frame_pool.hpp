/**
 * @file
 * Size-bucketed recycling allocator for coroutine frames.
 *
 * Every simulated GPU thread is one C++20 coroutine, so a single fast-mode
 * launch of 10k blocks x 256 threads allocates 2.56M coroutine frames.
 * Without pooling each frame is a malloc/free pair — the dominant
 * per-thread cost for the short kernels the paper's algorithms are made
 * of. A FramePool keeps freed frames on per-size-class free lists and
 * hands them back on the next launch, so steady-state sweeps allocate
 * from the system only during the first block of the first launch.
 *
 * Wiring: Task::promise_type routes its operator new/delete through
 * FramePool::allocateFrame/deallocateFrame. Allocation consults a
 * thread-local "current pool" that Engine::launch installs via
 * FramePool::Scope for the duration of a launch; frames created outside
 * any scope fall back to plain malloc. Every frame carries a 16-byte
 * header naming its owning pool, so deallocation always returns the
 * frame to wherever it came from — even if the scope has already ended
 * or a different pool is current.
 *
 * A pool must outlive every frame it allocated (Engine guarantees this
 * by declaring the pool before any Task-holding member and clearing its
 * thread scratch at the end of each launch). Pools are not thread-safe;
 * each Engine owns one and engines are single-threaded.
 */
#pragma once

#include <cstddef>

#include "core/types.hpp"

namespace eclsim::simt {

/** Recycling size-bucketed frame allocator (see file comment). */
class FramePool
{
  public:
    FramePool() = default;
    ~FramePool();

    FramePool(const FramePool&) = delete;
    FramePool& operator=(const FramePool&) = delete;

    /** Allocate a frame of the given size through the thread's current
     *  pool, or from the system when no pool is in scope. */
    static void* allocateFrame(std::size_t bytes);

    /** Return a frame to the pool that allocated it (or the system). */
    static void deallocateFrame(void* frame) noexcept;

    /** True while some pool is installed as the calling thread's current
     *  pool. Warp-batched launches are frame-free (no coroutines, so no
     *  Scope is installed); the engine asserts this stays false across
     *  them to catch any coroutine allocation sneaking onto that path. */
    static bool scopeActive();

    /** Installs a pool as the calling thread's current pool, restoring
     *  the previous one on destruction. */
    class Scope
    {
      public:
        explicit Scope(FramePool& pool);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        FramePool* prev_;
    };

    // --- statistics (for tests and the perf bench) -----------------------

    /** Frames served by a fresh system allocation. */
    u64 systemAllocs() const { return system_allocs_; }
    /** Frames served from a free list (recycled). */
    u64 reuses() const { return reuses_; }
    /** Pool-owned frames currently live (allocated, not yet returned). */
    u64 outstanding() const { return outstanding_; }
    /** Frames parked on the free lists, ready for reuse. */
    u64 freeFrames() const;

  private:
    /** Per-frame header preceding the frame bytes. 16 bytes keeps the
     *  frame on the default operator-new alignment malloc provides. */
    struct Header
    {
        FramePool* pool;  ///< owning pool; null = plain malloc
        u64 bucket;       ///< free-list index (pool-owned frames only)
    };
    static_assert(sizeof(Header) == 16);
    static constexpr std::size_t kHeaderBytes = 16;

    /** Free-list granularity: frames round up to 64-byte size classes. */
    static constexpr std::size_t kGranularity = 64;
    /** Size classes; frames over kBuckets * kGranularity bypass the pool. */
    static constexpr std::size_t kBuckets = 64;

    void* allocate(std::size_t bytes);
    void release(Header* header) noexcept;

    void* free_lists_[kBuckets] = {};  ///< intrusive singly-linked lists
    u64 system_allocs_ = 0;
    u64 reuses_ = 0;
    u64 outstanding_ = 0;
};

}  // namespace eclsim::simt
