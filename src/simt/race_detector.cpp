#include "simt/race_detector.hpp"

#include <sstream>

namespace eclsim::simt {

const char*
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::kReadWrite:
        return "read-write";
      case RaceKind::kWriteWrite:
        return "write-write";
    }
    return "unknown";
}

RaceDetector::RaceDetector(const DeviceMemory& memory,
                           prof::CounterRegistry* counters)
    : memory_(memory), prof_(counters)
{
    if (prof_) {
        c_checks_ = prof_->id("sim/race/checks");
        c_conflicts_ = prof_->id("sim/race/conflicts");
    }
}

void
RaceDetector::ensureCapacity(u64 end)
{
    if (last_write_.size() < end) {
        last_write_.resize(end);
        last_read_.resize(end);
    }
}

bool
RaceDetector::conflicts(const ShadowRecord& prev, const ThreadInfo& who,
                        bool both_atomic) const
{
    if (!prev.valid || prev.launch != who.launch)
        return false;  // kernel boundaries order everything
    if (prev.thread == who.thread)
        return false;  // program order
    if (both_atomic)
        return false;  // atomic/atomic pairs synchronize
    if (prev.block == who.block && prev.epoch != who.epoch)
        return false;  // ordered by __syncthreads
    return true;
}

void
RaceDetector::report(u64 addr, const ShadowRecord& prev,
                     const ThreadInfo& who, RaceKind kind)
{
    if (prof_)
        prof_->add(c_conflicts_);
    const std::string& name = memory_.allocationAt(addr).name;
    for (RaceReport& r : reports_) {
        if (r.allocation == name && r.kind == kind) {
            ++r.count;
            return;
        }
    }
    RaceReport r;
    r.allocation = name;
    r.kind = kind;
    r.count = 1;
    r.first_address = addr;
    r.first_thread_a = prev.thread;
    r.first_thread_b = who.thread;
    reports_.push_back(std::move(r));
}

void
RaceDetector::onAccess(const ThreadInfo& who, u64 addr, u8 size,
                       bool is_write, bool is_atomic)
{
    ensureCapacity(addr + size);
    if (prof_)
        prof_->add(c_checks_);
    for (u8 i = 0; i < size; ++i) {
        const u64 a = addr + i;
        const ShadowRecord& w = last_write_[a];
        if (conflicts(w, who, is_atomic && w.atomic)) {
            report(a, w, who,
                   is_write ? RaceKind::kWriteWrite : RaceKind::kReadWrite);
        }
        if (is_write) {
            const ShadowRecord& r = last_read_[a];
            if (conflicts(r, who, is_atomic && r.atomic))
                report(a, r, who, RaceKind::kReadWrite);
        }

        ShadowRecord rec;
        rec.launch = who.launch;
        rec.thread = who.thread;
        rec.block = who.block;
        rec.epoch = who.epoch;
        rec.atomic = is_atomic;
        rec.valid = true;
        if (is_write)
            last_write_[a] = rec;
        else
            last_read_[a] = rec;
    }
}

u64
RaceDetector::totalRaces() const
{
    u64 total = 0;
    for (const RaceReport& r : reports_)
        total += r.count;
    return total;
}

bool
RaceDetector::hasRaceOn(const std::string& allocation) const
{
    for (const RaceReport& r : reports_)
        if (r.allocation == allocation)
            return true;
    return false;
}

std::string
RaceDetector::summary() const
{
    if (reports_.empty())
        return "no data races detected\n";
    std::ostringstream out;
    for (const RaceReport& r : reports_) {
        out << raceKindName(r.kind) << " race on '" << r.allocation << "': "
            << r.count << " conflicting pair(s), first at address "
            << r.first_address << " between threads " << r.first_thread_a
            << " and " << r.first_thread_b << "\n";
    }
    return out.str();
}

void
RaceDetector::reset()
{
    last_write_.assign(last_write_.size(), ShadowRecord{});
    last_read_.assign(last_read_.size(), ShadowRecord{});
    reports_.clear();
}

}  // namespace eclsim::simt
