#include "simt/race_detector.hpp"

namespace eclsim::simt {

RaceDetector::RaceDetector(const DeviceMemory& memory,
                           prof::CounterRegistry* counters)
    : racecheck::Detector(
          [&memory](u64 addr) {
              return racecheck::Detector::ResolvedAlloc{
                  memory.allocationIndexAt(addr),
                  memory.allocationAt(addr).name};
          },
          counters)
{}

}  // namespace eclsim::simt
