/**
 * @file
 * Perturbation hook interface for adversarial schedule / fault-injection
 * experiments (eclsim::chaos).
 *
 * The paper's benign-race claim is a universal statement: the outputs of
 * the racy baselines stay valid under *every* interleaving, staleness
 * window, and store-visibility delay the hardware and compiler may
 * produce. The simulator's default scheduler only explores a narrow
 * slice of that space, so Engine and MemorySubsystem accept an optional
 * PerturbationHooks object whose callbacks widen it:
 *
 *  - refreshSnapshot() can keep a sweep-visibility snapshot stale across
 *    kernel launches (an amplified version of the compiler value caching
 *    that Visibility::kSweepSnapshot models),
 *  - delayStoreAccesses() holds racy non-atomic stores in a write buffer
 *    so other threads keep reading the old value for a while,
 *  - duplicateStoreAfter() redelivers a racy plain store later — the
 *    compiler latitude of re-materializing a non-atomic store,
 *  - dropAtomicUpdate() discards an atomic update: this one is
 *    deliberately *harmful* (atomics are the synchronization the
 *    race-free codes rely on) and exists so tests can prove the chaos
 *    oracles catch genuinely broken executions,
 *  - reorderBlocks() / smStallCycles() / extraAccessLatency() bias the
 *    block schedule and inject transient stalls.
 *
 * All defaults are no-ops; a null hooks pointer costs one pointer test
 * per launch and none per access. Implementations live in src/chaos and
 * must not be shared across concurrently running engines (the campaign
 * runner builds one per cell).
 */
#pragma once

#include <vector>

#include "core/types.hpp"
#include "simt/access.hpp"
#include "simt/race_detector.hpp"

namespace eclsim::simt {

/** Perturbation decision callbacks (see file comment). */
class PerturbationHooks
{
  public:
    virtual ~PerturbationHooks() = default;

    /**
     * Called at the start of launch number @p launch (0-based, counted
     * per engine). Return false to *skip* refreshing the sweep-visibility
     * snapshot, so kSweepSnapshot readers keep seeing values from an
     * earlier launch. The launch-0 snapshot is always taken regardless
     * (host uploads must be visible to the first kernel); the hook is
     * not consulted for it.
     */
    virtual bool
    refreshSnapshot(u32 launch)
    {
        (void)launch;
        return true;
    }

    /**
     * Consulted for every racy (non-atomic) store. Return N > 0 to hold
     * the store in a write buffer for the next N memory accesses of the
     * engine before it becomes visible to other threads. The storing
     * thread always observes its own buffered value (program order), and
     * every buffered store is flushed at the end of the launch (kernel
     * boundaries synchronize).
     */
    virtual u32
    delayStoreAccesses(const ThreadInfo& who, const MemRequest& req)
    {
        (void)who;
        (void)req;
        return 0;
    }

    /**
     * Consulted for racy *plain* stores that were performed immediately.
     * Return N > 0 to deliver the same store again after N further
     * accesses — clobbering whatever was written in between, the way a
     * compiler may legally re-issue a non-atomic store.
     */
    virtual u32
    duplicateStoreAfter(const ThreadInfo& who, const MemRequest& req)
    {
        (void)who;
        (void)req;
        return 0;
    }

    /**
     * HARMFUL. Return true to silently discard an atomic update (RMW or
     * atomic store). The issuing thread still observes the pre-update
     * value, as if the operation happened and was immediately lost. No
     * real machine does this; it exists to prove the validity oracles
     * reject broken executions.
     */
    virtual bool
    dropAtomicUpdate(const ThreadInfo& who, const MemRequest& req)
    {
        (void)who;
        (void)req;
        return false;
    }

    /** Extra latency cycles charged to this access (transient stall). */
    virtual u64
    extraAccessLatency(const ThreadInfo& who, const MemRequest& req)
    {
        (void)who;
        (void)req;
        return 0;
    }

    /**
     * Rewrite the launch's block schedule in place (called after the
     * engine's own shuffle). order holds a permutation of [0, grid).
     */
    virtual void
    reorderBlocks(std::vector<u32>& order, u32 launch)
    {
        (void)order;
        (void)launch;
    }

    /** Stall cycles injected before a block starts executing on an SM. */
    virtual u64
    smStallCycles(u32 sm, u32 block)
    {
        (void)sm;
        (void)block;
        return 0;
    }
};

}  // namespace eclsim::simt
