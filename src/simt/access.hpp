/**
 * @file
 * Classification of simulated device memory accesses.
 *
 * The paper's entire study is about the difference between three ways a
 * CUDA kernel can touch shared data:
 *
 *  - plain (non-volatile) accesses: cacheable in the L1 and subject to
 *    compiler value caching — fast but racy;
 *  - volatile accesses: always reach memory (bypass the L1 on NVIDIA
 *    hardware) but still non-atomic and therefore still racy;
 *  - relaxed atomic accesses (libcu++): race-free, resolved at the L2,
 *    with an architecture-dependent atomic-unit cost.
 *
 * AccessMode mirrors this three-way split; every kernel memory operation
 * in eclsim carries one.
 */
#pragma once

#include "core/types.hpp"

namespace eclsim::simt {

/** How a load/store is qualified in the source program. */
enum class AccessMode : u8 {
    kPlain,     ///< ordinary non-volatile access (racy, L1-cacheable)
    kVolatile,  ///< volatile-qualified access (racy, bypasses the L1)
    kAtomic,    ///< cuda::atomic relaxed load/store (race-free, at the L2)
};

/** Kind of memory operation. */
enum class MemOpKind : u8 {
    kLoad,
    kStore,
    kRmw,  ///< atomic read-modify-write (always atomic, always live)
};

/**
 * Memory-ordering constraint of an atomic operation (libcu++'s
 * cuda::memory_order). The paper's converted codes use kRelaxed
 * throughout — "the weakest version that is sufficient for correctness
 * should be used to maximize performance" (Section II-A) — and warns
 * that the default (seq_cst) "can lead to poor performance".
 */
enum class MemoryOrder : u8 {
    kRelaxed,
    kAcquire,
    kRelease,
    kSeqCst,
};

/**
 * Scope of an atomic operation (libcu++'s cuda::thread_scope): how far
 * the atomicity and ordering must be visible. Narrower scopes can
 * resolve closer to the core (block scope in the SM, device scope at
 * the L2, system scope with host visibility).
 */
enum class Scope : u8 {
    kBlock,
    kDevice,
    kSystem,
};

/** Read-modify-write operator. */
enum class RmwOp : u8 {
    kAdd,
    kMin,   ///< unsigned comparison
    kMax,   ///< unsigned comparison
    kAnd,
    kOr,
    kExch,
    kCas,
    kAddF,  ///< IEEE-754 single-precision add (atomicAdd(float*))
};

/** One device memory request as issued by a kernel thread. */
struct MemRequest
{
    u64 addr = 0;                       ///< byte address in the arena
    u8 size = 4;                        ///< 1, 2, 4, or 8 bytes
    MemOpKind kind = MemOpKind::kLoad;
    AccessMode mode = AccessMode::kPlain;
    RmwOp rmw = RmwOp::kAdd;
    MemoryOrder order = MemoryOrder::kRelaxed;  ///< atomics only
    Scope scope = Scope::kDevice;               ///< atomics only
    u64 value = 0;    ///< store value / RMW operand (zero-extended)
    u64 compare = 0;  ///< CAS expected value
    /**
     * Source access site (racecheck::SiteId) this request was issued
     * from; 0 = unattributed. Set by ThreadCtx::at(ECL_SITE(...)) so
     * race reports can name the racing source locations the way
     * Compute Sanitizer / iGuard do.
     */
    u32 site = 0;
    /**
     * When set, non-atomic 8-byte accesses execute as two 4-byte machine
     * transfers — the word-tearing hazard of the paper's Fig. 1. The
     * interleaved engine sets this to model a 32-bit-native target (where
     * such code breaks); the fast engine models the actual evaluation
     * GPUs, which have native 64-bit transfers.
     */
    bool split_wide = false;

    /** Number of machine-level pieces the access decomposes into.
     *  Atomics and RMWs never tear regardless of split_wide. */
    u32
    pieces() const
    {
        const bool indivisible =
            kind == MemOpKind::kRmw || mode == AccessMode::kAtomic;
        return (split_wide && !indivisible && size == 8) ? 2 : 1;
    }
};

/**
 * Structure-of-arrays view of one warp's lanes for a batched access
 * (the engine's ExecMode::kWarpBatched hot path). A warp op is one
 * MemRequest *template* carrying everything the lanes share — size,
 * kind, mode, RMW operator, order, scope, site — plus these
 * lane-indexed arrays for what differs per lane. Lane l's thread id is
 * first_thread + l; the arrays hold `count` valid entries. `value` and
 * `compare` may be null when the op kind never reads them (loads).
 */
struct WarpAccessBatch
{
    u32 count = 0;         ///< active lanes (arrays' valid length)
    u32 first_thread = 0;  ///< lane 0's global thread id
    const u64* addr = nullptr;     ///< per-lane byte addresses
    const u64* value = nullptr;    ///< store values / RMW operands
    const u64* compare = nullptr;  ///< CAS expected values
    u64* out = nullptr;            ///< per-lane result bits (loads, RMW old)
};

/** True if this request participates in data races (i.e. is not atomic). */
inline bool
isRacy(const MemRequest& req)
{
    return req.kind != MemOpKind::kRmw && req.mode != AccessMode::kAtomic;
}

}  // namespace eclsim::simt
