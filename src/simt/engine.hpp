/**
 * @file
 * The SIMT execution engine.
 *
 * Engine runs kernels — C++20 coroutines of signature
 * `Task kernel(ThreadCtx&)` — over a simulated GPU described by a
 * GpuSpec. Three execution modes share all kernel code:
 *
 *  - kFast: threads run to completion (suspending only at __syncthreads),
 *    with every memory access routed through the cache/timing model and
 *    charged to the owning SM. Blocks are scheduled in a per-launch
 *    pseudo-random order, approximating the unordered block scheduling of
 *    a real GPU. This mode drives the paper's speedup tables.
 *
 *  - kInterleaved: all threads coexist and a cycle-driven scheduler
 *    interleaves them at memory-access granularity. Plain and volatile
 *    64-bit accesses execute as two 32-bit pieces with simulated time
 *    between them, so word tearing (paper Fig. 1) and data races are
 *    genuinely observable. This mode drives the race-detection tests.
 *
 *  - kWarpBatched: like kFast, but launches of *warp kernels* (plain
 *    functions over a SoA WarpCtx, no coroutines, no frames) execute a
 *    whole warp's accesses as ONE batched memory operation — one
 *    tag/LRU probe per touched cache line instead of per lane
 *    (MemorySubsystem::performWarp). A per-launch eligibility check
 *    falls back to the per-lane route (and scalar coroutine kernels run
 *    exactly as kFast) whenever a hook could observe the difference, so
 *    simulated results are bit-identical across all three modes; only
 *    wall-clock throughput changes. See DESIGN.md §17.
 *
 * Kernel time is reported as max-over-SMs of accumulated cycles (fast
 * mode) or the final scheduler cycle (interleaved mode), lower-bounded by
 * the DRAM bandwidth term, then converted to milliseconds with the
 * spec's clock.
 */
#pragma once

#include <bit>
#include <functional>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/logging.hpp"
#include "core/types.hpp"
#include "simt/access.hpp"
#include "simt/device_memory.hpp"
#include "simt/frame_pool.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/memory_subsystem.hpp"
#include "simt/race_detector.hpp"
#include "simt/site_override.hpp"
#include "simt/task.hpp"

namespace eclsim::prof {
class TraceSession;
}

namespace eclsim::simt {

/** Execution mode (see file comment). */
enum class ExecMode : u8 {
    kFast,
    kInterleaved,
    kWarpBatched,
};

/** Canonical flag spelling of a mode: "fast", "interleaved", "batch". */
const char* execModeName(ExecMode mode);
/** Parse an --exec-mode flag value ("interleaved" | "fast" | "batch");
 *  fatal on anything else. */
ExecMode parseExecMode(std::string_view name);

/**
 * Why a launch did not take the batched warp route. Recorded per launch
 * (Engine::lastBatch) and counted under sim/mem/batch/fallback/<reason>
 * when profiling, so --counters shows why a launch did or didn't batch.
 */
enum class BatchFallback : u8 {
    kNone,          ///< it batched
    kNotBatchMode,  ///< engine mode is not kWarpBatched
    kScalarKernel,  ///< coroutine kernel: possible data-dependent lane
                    ///< divergence, runs exactly as kFast
    kForcedSlow,    ///< EngineOptions::force_slow_path
    kRaceDetector,  ///< dynamic race detection needs per-lane events
    kPerturbHooks,  ///< chaos hooks need per-access decision points
    kObserver,      ///< an AccessObserver needs per-lane callbacks
    kSiteOverrides, ///< site-override table is not warp-uniform
};

/** Counter-name suffix of a fallback reason. */
const char* batchFallbackName(BatchFallback reason);

/** Outcome of the most recent launch's batch-eligibility check. */
struct BatchLaunchInfo
{
    bool attempted = false;  ///< launch was a batch candidate
    bool batched = false;    ///< it ran on the batched warp route
    BatchFallback reason = BatchFallback::kNotBatchMode;
};

/** Engine configuration. */
struct EngineOptions
{
    ExecMode mode = ExecMode::kFast;
    /** Attach a dynamic race detector to every access. */
    bool detect_races = false;
    /** Schedule blocks in a per-launch pseudo-random order. */
    bool shuffle_blocks = true;
    /** Seed for the block-order shuffle (vary across measurement reps). */
    u64 seed = 1;
    MemoryOptions memory;
    /** Safety cap on simultaneously resident threads (interleaved mode). */
    u32 max_interleaved_threads = 1u << 22;
    /**
     * Ablation overrides: force every atomic operation's memory order /
     * scope, regardless of what the kernel requested. Used to reproduce
     * the claim that the libcu++ defaults (seq_cst, device scope) "can
     * lead to poor performance" versus the relaxed ordering the paper's
     * race-free codes use.
     */
    bool override_atomic_order = false;
    MemoryOrder forced_atomic_order = MemoryOrder::kSeqCst;
    bool override_atomic_scope = false;
    Scope forced_atomic_scope = Scope::kDevice;
    /**
     * Per-site access-mode override table (the repair subsystem's
     * applier, simt/site_override.hpp): requests whose MemRequest::site
     * appears in the table are strengthened to the table's
     * mode/order/scope before routing, on both the fast and the general
     * access path — the source-edit-free equivalent of the paper's
     * by-hand atomic conversions. Strengthening only: RMWs and
     * already-atomic accesses are untouched. The table must outlive the
     * engine and must not be mutated while it runs; null (or an empty
     * table) keeps the unoverridden hot path free of any cost.
     */
    const SiteOverrideTable* site_overrides = nullptr;
    /**
     * Optional profiling sink (eclsim::prof). When set, the engine
     * records kernel-launch spans and per-SM block-residency spans on
     * the session's timeline, the memory subsystem accumulates per-path
     * counters (sim/mem/...), and the race detector counts its checks
     * and conflicts (sim/race/...). Null disables all instrumentation;
     * the hooks then cost one pointer test per launch.
     */
    prof::TraceSession* trace = nullptr;
    /**
     * Optional perturbation hooks (eclsim::chaos): adversarial block
     * schedules, amplified staleness, store-visibility delays, transient
     * stalls, and harmful fault injection. The hooks object must outlive
     * the engine and must not be shared with another concurrently
     * running engine (it carries its own RNG). Null is free.
     */
    PerturbationHooks* perturb = nullptr;
    /**
     * Optional passive access observer (simt/observer.hpp,
     * eclsim::staticrace's recording substrate). When set, the engine
     * reports each kernel launch (name + shape) and every executed
     * access piece to the observer, with the same address/size
     * semantics the race detector sees. The observer must outlive the
     * engine and must not be shared with another concurrently running
     * engine. Installing one disables the hookless fast path. Null is
     * free.
     */
    AccessObserver* observer = nullptr;
    /**
     * Disable the hookless fast access path even when no hooks are
     * installed, forcing every access through the general
     * MemorySubsystem::performPieces route. The two paths are
     * bit-identical by contract; this switch exists so tests and
     * bench/simbench can prove it (and measure its cost).
     */
    bool force_slow_path = false;
};

/** Shape of one kernel launch. */
struct LaunchConfig
{
    u32 grid = 1;      ///< number of blocks (1-D)
    u32 block_x = 256; ///< threads per block, x dimension
    u32 block_y = 1;   ///< threads per block, y dimension
    u32 shared_bytes = 0;

    u32 blockSize() const { return block_x * block_y; }
    u64
    totalThreads() const
    {
        return static_cast<u64>(grid) * blockSize();
    }
};

/** Convenience: 1-D launch covering at least work items. */
LaunchConfig launchFor(u64 work, u32 block = 256);

/** Result of one kernel launch. */
struct LaunchStats
{
    /**
     * Kernel name, viewing the string passed to Engine::launch. Call
     * sites pass string literals (or otherwise stable storage), so the
     * view stays valid for the stats' lifetime without a per-launch
     * std::string copy.
     */
    std::string_view kernel;
    u64 cycles = 0;
    double ms = 0.0;
    MemoryCounters mem;

    /** Accumulate another launch's cycles, time, and traffic. */
    LaunchStats& operator+=(const LaunchStats& other);
};

namespace detail {

template <typename T>
constexpr u64
toBits(T value)
{
    static_assert((std::is_integral_v<T> || std::is_same_v<T, float>) &&
                  sizeof(T) <= 8);
    if constexpr (std::is_same_v<T, float>) {
        // Floats travel through the memory system as their IEEE-754 bit
        // pattern, zero-extended — exactly a 32-bit register on the GPU.
        return static_cast<u64>(std::bit_cast<u32>(value));
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<u64>(static_cast<U>(value));
    }
}

template <typename T>
constexpr T
fromBits(u64 bits)
{
    static_assert((std::is_integral_v<T> || std::is_same_v<T, float>) &&
                  sizeof(T) <= 8);
    if constexpr (std::is_same_v<T, float>) {
        return std::bit_cast<float>(static_cast<u32>(bits));
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<T>(static_cast<U>(bits));
    }
}

}  // namespace detail

class Engine;

/**
 * Per-thread execution context: the "device API" kernels program
 * against. A ThreadCtx is created by the engine for every simulated
 * thread and stays valid for the thread's whole lifetime.
 */
class ThreadCtx
{
  public:
    // --- identification (CUDA built-in variable analogues) --------------
    u32 globalThreadId() const { return info_.thread; }
    u32 blockId() const { return info_.block; }
    u32 threadInBlock() const { return thread_in_block_; }
    u32 threadX() const { return thread_in_block_ % block_x_; }
    u32 threadY() const { return thread_in_block_ / block_x_; }
    u32 blockDimX() const { return block_x_; }
    u32 blockDimY() const { return block_y_; }
    u32 gridDim() const { return grid_; }
    /** Total threads in the launch (gridDim * blockDim). */
    u32 gridSize() const { return grid_ * block_x_ * block_y_; }

    // --- memory operations ----------------------------------------------

    /**
     * Attribute the next memory operation to a source site:
     * `co_await t.at(ECL_SITE("compute parent[] jump-load")).load(...)`.
     * The site id is consumed by the next request built on this context,
     * so race reports can name the racing source access. Unattributed
     * operations carry racecheck::kUnknownSite.
     */
    ThreadCtx&
    at(u32 site)
    {
        next_site_ = site;
        return *this;
    }

    /** Awaitable load; co_await yields the value of type T. Order and
     *  scope only apply to mode == kAtomic. */
    template <typename T>
    auto load(DevicePtr<T> ptr, u64 index = 0,
              AccessMode mode = AccessMode::kPlain,
              MemoryOrder order = MemoryOrder::kRelaxed,
              Scope scope = Scope::kDevice);

    /** Awaitable store. */
    template <typename T>
    auto store(DevicePtr<T> ptr, u64 index, T value,
               AccessMode mode = AccessMode::kPlain,
               MemoryOrder order = MemoryOrder::kRelaxed,
               Scope scope = Scope::kDevice);

    template <typename T>
    auto atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                  MemoryOrder order = MemoryOrder::kRelaxed,
                  Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                    MemoryOrder order = MemoryOrder::kRelaxed,
                    Scope scope = Scope::kDevice);
    /** Compare-and-swap; returns the old value. */
    template <typename T>
    auto atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);

    /** Block-wide barrier (__syncthreads analogue). */
    auto syncthreads();

    /** Charge pure-compute cycles to this thread's SM. */
    void work(u32 cycles);

    /**
     * Carve count elements of T from the block's shared memory. Threads
     * of a block making identical sharedArray() call sequences receive
     * identical (shared) storage, like CUDA __shared__ declarations.
     * Shared-memory accesses are untimed; charge work() where relevant.
     */
    template <typename T>
    T*
    sharedArray(u32 count)
    {
        const u32 align = alignof(T);
        shared_cursor_ = (shared_cursor_ + align - 1) / align * align;
        const u64 end = static_cast<u64>(shared_cursor_) +
                        static_cast<u64>(count) * sizeof(T);
        if (end > shared_limit_) {
            // User error, not a simulator bug: the kernel carved more
            // shared memory than its LaunchConfig declared — on real CUDA
            // this is an out-of-bounds __shared__ access.
            fatal("sharedArray({} x {} bytes) overflows shared memory: "
                  "block needs {} bytes but the launch declared "
                  "shared_bytes = {}",
                  count, sizeof(T), end, shared_limit_);
        }
        T* out = reinterpret_cast<T*>(shared_base_ + shared_cursor_);
        shared_cursor_ += count * sizeof(T);
        return out;
    }

  private:
    friend class Engine;
    template <typename T>
    friend class LoadAwaiter;
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;

    /** Consume the pending site attribution (one request). */
    u32
    takeSite()
    {
        const u32 site = next_site_;
        next_site_ = 0;
        return site;
    }

    /**
     * Reset the slots the previous occupant of this scratch ThreadCtx
     * may have dirtied, without the full-struct copy `ctx = ThreadCtx()`
     * would cost (pending_req_ alone is 56 bytes; runFast re-resets one
     * ThreadCtx per simulated thread). Identification fields are
     * excluded — the engine overwrites them right after.
     */
    void
    resetForReuse()
    {
        task_ = Task();  // destroys the previous thread's frame
        next_site_ = 0;
        shared_cursor_ = 0;
        pending_pieces_done_ = 0;
        pending_bits_ = 0;
        has_pending_ = false;
        ready_cycle_ = 0;
        deferred_work_ = 0;
        at_barrier_ = false;
        finished_ = false;
    }

    Engine* engine_ = nullptr;
    Task task_;
    ThreadInfo info_;
    u32 next_site_ = 0;  ///< site for the next request (see at())
    u32 sm_ = 0;
    u32 thread_in_block_ = 0;
    u32 block_x_ = 1, block_y_ = 1, grid_ = 1;
    u8* shared_base_ = nullptr;
    u32 shared_cursor_ = 0;
    u32 shared_limit_ = 0;  ///< LaunchConfig::shared_bytes of the launch

    // interleaved-mode scheduling state
    MemRequest pending_req_;
    u32 pending_pieces_done_ = 0;
    u64 pending_bits_ = 0;
    bool has_pending_ = false;
    u64 ready_cycle_ = 0;
    u64 deferred_work_ = 0;
    bool at_barrier_ = false;
    bool finished_ = false;
};

/** Untyped awaitable shared by all memory operations. */
class MemAwaiterBase
{
  public:
    /**
     * Fast mode resolves the access right here in the constructor —
     * before the co_await machinery even asks await_ready — so the
     * request never has to be copied into the awaiter (and thus never
     * spills into the coroutine frame). Only the interleaved engine,
     * which genuinely suspends, stores the request for await_suspend.
     */
    MemAwaiterBase(ThreadCtx* ctx, const MemRequest& req);

    /** The expect hint moves the suspend machinery out of the hot
     *  fall-through path; fast mode always resolves immediately. */
    bool await_ready() { return __builtin_expect(immediate_, 1); }
    void await_suspend(std::coroutine_handle<> handle);
    u64 await_resume();

  protected:
    static_assert(std::is_trivially_copyable_v<MemRequest> &&
                      std::is_trivially_destructible_v<MemRequest>,
                  "req_ lives in a union and is placement-constructed");

    ThreadCtx* ctx_;
    union {
        MemRequest req_;  ///< populated only when the access suspends
    };
    u64 result_bits_ = 0;
    bool immediate_ = false;
};

/** Typed load awaitable. */
template <typename T>
class LoadAwaiter : public MemAwaiterBase
{
  public:
    using MemAwaiterBase::MemAwaiterBase;
    T
    await_resume()
    {
        return detail::fromBits<T>(MemAwaiterBase::await_resume());
    }
};

/** Barrier awaitable. */
class BarrierAwaiter
{
  public:
    explicit BarrierAwaiter(ThreadCtx* ctx) : ctx_(ctx) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() {}

  private:
    ThreadCtx* ctx_;
};

/**
 * Structure-of-arrays context of one warp: the "device API" of warp
 * kernels (ExecMode::kWarpBatched's batch candidates). Where a ThreadCtx
 * models one thread resuming a coroutine per access, a WarpCtx models
 * all lanes of a warp at once: every operation takes per-lane index /
 * value generator callables (invoked with the lane id 0..lanes()-1),
 * gathers the warp's addresses into lane-indexed arrays, and issues ONE
 * batched request for the whole warp. Warp kernels are plain functions —
 * no coroutine, no frame allocation — and are divergence-free by
 * construction: every lane of an op executes it (a uniform prefix
 * `count` can shorten the active lanes, modeling tail predication, but
 * there is no data-dependent per-lane branching). There is no shared
 * memory and no barrier: warp kernels are bulk-synchronous straight-line
 * code, which is exactly the shape that batches.
 *
 * The engine owns one WarpCtx as per-launch scratch and re-points its
 * identification fields per warp (the resetForReuse idiom): the
 * lane-indexed arrays are launch-invariant storage, written per op.
 */
class WarpCtx
{
  public:
    /** Fixed lane-array capacity; specs with warp_size > 32 are rejected
     *  at warp-kernel launch. */
    static constexpr u32 kMaxLanes = 32;
    /** Default `count`: every lane of the warp participates. */
    static constexpr u32 kAllLanes = ~u32{0};

    // --- identification -------------------------------------------------
    /** Active lanes of this warp (warp_size, or the block tail). */
    u32 lanes() const { return lane_count_; }
    /** Global thread id of lane 0 (lane l is warpBase() + l). */
    u32 warpBase() const { return base_tid_; }
    u32 blockId() const { return block_; }
    u32 blockDim() const { return block_size_; }
    /** Total threads in the launch (gridDim * blockDim). */
    u32 gridSize() const { return grid_size_; }

    /** Attribute the next warp operation to a source site (see
     *  ThreadCtx::at); the site is shared by every lane of the op. */
    WarpCtx&
    at(u32 site)
    {
        next_site_ = site;
        return *this;
    }

    // --- warp-wide memory operations ------------------------------------
    // index_of / value_of / expected_of are callables u32 lane -> value,
    // invoked in lane order for the first `count` lanes (count ==
    // kAllLanes means lanes()). Results land in out[0..count), when out
    // is non-null for RMWs.

    /** Batched load: out[l] = ptr[index_of(l)]. */
    template <typename T, typename IdxFn>
    void load(DevicePtr<T> ptr, IdxFn&& index_of, T* out,
              u32 count = kAllLanes, AccessMode mode = AccessMode::kPlain,
              MemoryOrder order = MemoryOrder::kRelaxed,
              Scope scope = Scope::kDevice);

    /** Batched store: ptr[index_of(l)] = value_of(l). */
    template <typename T, typename IdxFn, typename ValFn>
    void store(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& value_of,
               u32 count = kAllLanes, AccessMode mode = AccessMode::kPlain,
               MemoryOrder order = MemoryOrder::kRelaxed,
               Scope scope = Scope::kDevice);

    template <typename T, typename IdxFn, typename ValFn>
    void atomicAdd(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T, typename IdxFn, typename ValFn>
    void atomicMin(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T, typename IdxFn, typename ValFn>
    void atomicMax(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T, typename IdxFn, typename ValFn>
    void atomicAnd(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T, typename IdxFn, typename ValFn>
    void atomicOr(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                  std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                  MemoryOrder order = MemoryOrder::kRelaxed,
                  Scope scope = Scope::kDevice);
    template <typename T, typename IdxFn, typename ValFn>
    void atomicExch(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& desired_of,
                    std::type_identity_t<T>* old_out = nullptr, u32 count = kAllLanes,
                    MemoryOrder order = MemoryOrder::kRelaxed,
                    Scope scope = Scope::kDevice);
    /** Batched compare-and-swap; old values land in old_out when set. */
    template <typename T, typename IdxFn, typename CmpFn, typename ValFn>
    void atomicCas(DevicePtr<T> ptr, IdxFn&& index_of, CmpFn&& expected_of,
                   ValFn&& desired_of, std::type_identity_t<T>* old_out = nullptr,
                   u32 count = kAllLanes,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);

    /** Charge pure-compute cycles to every active lane's SM share (the
     *  warp equivalent of each lane calling ThreadCtx::work(cycles)). */
    void work(u32 cycles);

  private:
    friend class Engine;

    /** Consume the pending site attribution (one warp op). */
    u32
    takeSite()
    {
        const u32 site = next_site_;
        next_site_ = 0;
        return site;
    }

    /** Build the op template shared by all lanes of one warp op. */
    MemRequest
    opTemplate(u8 size, MemOpKind kind, AccessMode mode, MemoryOrder order,
               Scope scope)
    {
        MemRequest req;
        req.size = size;
        req.kind = kind;
        req.mode = mode;
        req.order = order;
        req.scope = scope;
        req.site = takeSite();
        return req;
    }

    template <typename T, typename IdxFn, typename ValFn>
    void rmwOp(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
               std::type_identity_t<T>* old_out, u32 count, RmwOp op, MemoryOrder order,
               Scope scope);

    Engine* engine_ = nullptr;
    u32 base_tid_ = 0;
    u32 lane_count_ = 0;
    u32 block_ = 0;
    u32 sm_ = 0;
    u32 block_size_ = 0;
    u32 grid_size_ = 0;
    u32 next_site_ = 0;

    // Lane-indexed SoA op state (launch-invariant storage, per-op data).
    alignas(64) u64 addr_[kMaxLanes] = {};
    u64 value_[kMaxLanes] = {};
    u64 compare_[kMaxLanes] = {};
    u64 out_[kMaxLanes] = {};
};

/** Warp-kernel signature: plain function of one warp's SoA context. */
using WarpKernel = std::function<void(WarpCtx&)>;

/** The SIMT execution engine (see file comment). */
class Engine
{
  public:
    Engine(GpuSpec spec, DeviceMemory& memory, EngineOptions options = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /**
     * Synchronously execute a kernel over the given launch shape. The
     * name must outlive any LaunchStats that references it (call sites
     * pass string literals).
     */
    LaunchStats
    launch(std::string_view name, const LaunchConfig& config,
           const std::function<Task(ThreadCtx&)>& kernel);

    /**
     * Synchronously execute a warp kernel: the kernel is invoked once
     * per warp (grid * ceil(blockSize / warp_size) times) with the
     * engine's WarpCtx scratch re-pointed at that warp. Frame-free —
     * no coroutines are created. In ExecMode::kWarpBatched an eligible
     * launch takes the batched SoA route (one coalesced probe per
     * touched line); otherwise every lane routes through the same
     * per-lane path scalar kernels use, so results are bit-identical
     * either way (see lastBatch() for which route ran and why).
     * Requires shared_bytes == 0: warp kernels have no shared memory.
     */
    LaunchStats
    launch(std::string_view name, const LaunchConfig& config,
           const WarpKernel& kernel);

    const GpuSpec& spec() const { return spec_; }
    DeviceMemory& memory() { return memory_; }
    MemorySubsystem& memorySubsystem() { return *mem_subsystem_; }
    RaceDetector* raceDetector() { return detector_.get(); }
    const EngineOptions& options() const { return options_; }

    /** Simulated milliseconds accumulated over all launches. */
    double elapsedMs() const { return elapsed_ms_; }
    void resetElapsed() { elapsed_ms_ = 0.0; }
    u32 launchCount() const { return launch_counter_; }

    /** Reseed the block-order shuffle (between measurement reps). */
    void setSeed(u64 seed) { options_.seed = seed; }

    /** Coroutine-frame pool statistics (tests and bench/simbench). */
    const FramePool& framePool() const { return frame_pool_; }
    /** True if the current/last launch took the hookless access path. */
    bool usedFastPath() const { return use_fast_path_; }

    /** Outcome of the last batch-candidate launch's eligibility check
     *  (warp-kernel launches in any mode, plus scalar launches in
     *  kWarpBatched mode, are candidates). */
    const BatchLaunchInfo& lastBatch() const { return last_batch_; }
    /** Candidate launches that ran on the batched warp route. */
    u64 batchedLaunches() const { return batched_launches_; }
    /** Candidate launches that fell back to the per-lane route. */
    u64 batchFallbackLaunches() const { return fallback_launches_; }

  private:
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;
    friend class ThreadCtx;
    friend class WarpCtx;

    /** Modes whose accesses resolve synchronously inside await_ready
     *  (everything but the cycle-interleaved scheduler). */
    bool
    immediateMode() const
    {
        return options_.mode != ExecMode::kInterleaved;
    }

    /** Apply the EngineOptions order/scope ablation overrides. */
    void applyAtomicOverrides(MemRequest& req) const;
    /** Immediate-mode inline access: execute, charge the SM, return
     *  bits. `who`/`sm` identify the issuing simulated thread (a
     *  ThreadCtx's info, or a synthesized lane identity on the warp
     *  fallback route). */
    u64 performImmediate(const ThreadInfo& who, u32 sm,
                         const MemRequest& req);
    /** Route an (override-applied) request to the selected path. */
    u64 performRouted(const ThreadInfo& who, u32 sm,
                      const MemRequest& req);
    /** Issue one warp op: batched when the launch is batch-live, else
     *  per-lane through performRouted. Applies request overrides to the
     *  shared template once (all lanes of an op carry the same site, so
     *  the per-warp and per-lane rewrites coincide). */
    void warpAccess(WarpCtx& w, MemRequest& tmpl, u32 count);
    /** Per-launch batch-eligibility check (kNone = batch it). */
    BatchFallback batchEligibility() const;
    /** Record a batch candidate's outcome (lastBatch, counters, prof). */
    void recordBatchOutcome(bool batched, BatchFallback reason);
    /** Interleaved-mode access issue (first piece now, rest at wake). */
    void submitAccess(ThreadCtx& ctx, const MemRequest& req);
    /** Barrier arrival (both modes). */
    void arriveBarrier(ThreadCtx& ctx);
    void chargeWork(ThreadCtx& ctx, u32 cycles);

    /**
     * Latency hidden behind other resident warps. Memoizes
     * u64(double(latency) / spec_.latency_hiding) per distinct latency —
     * the exact expression the engine has always charged, computed once
     * instead of a float divide per access.
     */
    u64
    hiddenCycles(u64 latency)
    {
        if (latency >= hidden_memo_.size()) [[unlikely]]
            hidden_memo_.resize(latency + 1, 0);
        u64& slot = hidden_memo_[latency];
        if (slot == 0)
            slot = static_cast<u64>(static_cast<double>(latency) /
                                    spec_.latency_hiding) +
                   1;  // +1 sentinel: 0 means "not computed yet"
        return slot - 1;
    }

    /** Shuffled block schedule, built into reused per-launch scratch. */
    const std::vector<u32>& blockOrder(u32 grid);

    /** Trace hooks (no-ops when options_.trace is null). */
    void traceLaunchBegin(std::string_view name, const LaunchConfig& config,
                          std::string_view mode_label);
    void traceLaunchEnd(const LaunchStats& stats, u64 races_before);
    void traceBlockSpan(u32 sm, u32 block, std::string_view name,
                        u64 sm_begin, u64 sm_end);
    /** Trace label of the current launch's execution route. */
    std::string_view modeLabel(bool batched) const;

    void runFast(const LaunchConfig& config,
                 const std::function<Task(ThreadCtx&)>& kernel,
                 LaunchStats& stats);
    void runInterleaved(const LaunchConfig& config,
                        const std::function<Task(ThreadCtx&)>& kernel,
                        LaunchStats& stats);
    void runWarps(const LaunchConfig& config, const WarpKernel& kernel,
                  LaunchStats& stats);

    GpuSpec spec_;
    DeviceMemory& memory_;
    EngineOptions options_;
    std::unique_ptr<RaceDetector> detector_;
    std::unique_ptr<MemorySubsystem> mem_subsystem_;

    /**
     * Coroutine-frame pool for this engine's launches. Declared before
     * every Task-holding member (thread_scratch_) so it is destroyed
     * after them: a frame must never outlive the pool that owns it.
     */
    FramePool frame_pool_;

    std::vector<u64> sm_cycles_;     ///< fast mode per-SM accumulators
    std::vector<u32> barrier_count_; ///< per-block arrived counters
    std::vector<u32> block_alive_;   ///< per-block live thread counters
    u64 now_ = 0;                    ///< interleaved global cycle
    double elapsed_ms_ = 0.0;
    u32 launch_counter_ = 0;
    /** Selected once per launch: hookless memory subsystem, an
     *  immediate (non-interleaved) mode, and not overridden by
     *  EngineOptions::force_slow_path. */
    bool use_fast_path_ = false;
    /** Any request-rewriting override configured — atomic order/scope
     *  ablations or a nonempty per-site table (cached; see
     *  performImmediate). */
    bool has_request_overrides_ = false;
    /** Selected once per warp-kernel launch: warp ops take the batched
     *  SoA route (performWarp) instead of the per-lane route. */
    bool warp_batch_live_ = false;
    BatchLaunchInfo last_batch_;   ///< last candidate's outcome
    u64 batched_launches_ = 0;     ///< candidates that batched
    u64 fallback_launches_ = 0;    ///< candidates that fell back
    WarpCtx warp_ctx_;             ///< per-launch warp scratch (SoA)

    // Per-launch scratch, reused across launches so a sweep's steady
    // state performs no per-launch allocation. thread_scratch_ is
    // cleared at the end of every fast launch, returning all coroutine
    // frames to frame_pool_.
    std::vector<u32> block_order_;          ///< blockOrder() result
    std::vector<u8> shared_scratch_;        ///< fast-mode shared memory
    std::vector<ThreadCtx> thread_scratch_; ///< fast-mode block contexts
    std::vector<u32> participants_scratch_; ///< barrier participant ids
    std::vector<u64> hidden_memo_;          ///< hiddenCycles() cache

    // profiling state (meaningful only when options_.trace is set)
    prof::TraceSession* trace_ = nullptr;
    u32 kernel_track_ = 0;   ///< session track for kernel-launch spans
    u64 trace_base_ = 0;     ///< session timestamp of the current launch
    // batch-outcome counters (sim/mem/batch/...; valid when trace_ set)
    prof::CounterId c_batch_launches_ = 0, c_batch_batched_ = 0,
                    c_batch_fallbacks_ = 0;

    static constexpr u32 kIssueCycles = 2;
    static constexpr u32 kBarrierCycles = 20;
    /** Launches wider than this get one residency span per SM instead
     *  of one per block, bounding the trace size. */
    static constexpr u32 kMaxTracedBlockSpans = 4096;
};

// --- inline ThreadCtx method definitions (need Engine) -------------------

template <typename T>
auto
ThreadCtx::load(DevicePtr<T> ptr, u64 index, AccessMode mode,
                MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kLoad;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::store(DevicePtr<T> ptr, u64 index, T value, AccessMode mode,
                 MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kStore;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.value = detail::toBits(value);
    req.site = takeSite();
    return MemAwaiterBase(this, req);
}

namespace detail {

template <typename T>
MemRequest
rmwRequest(DevicePtr<T> ptr, u64 index, RmwOp op, T operand,
           MemoryOrder order, Scope scope, T compare = T{})
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "CUDA RMW atomics support 32- and 64-bit types only");
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kRmw;
    req.mode = AccessMode::kAtomic;
    req.rmw = op;
    req.order = order;
    req.scope = scope;
    req.value = toBits(operand);
    req.compare = toBits(compare);
    return req;
}

}  // namespace detail

template <typename T>
auto
ThreadCtx::atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    // Float addition is not a bit-pattern add: route it through its own
    // RMW operator (CUDA's atomicAdd(float*) analogue).
    constexpr RmwOp op =
        std::is_same_v<T, float> ? RmwOp::kAddF : RmwOp::kAdd;
    auto req = detail::rmwRequest(ptr, index, op, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMin, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMax, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kAnd, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                    MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kOr, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                      MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kExch, desired, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kCas, desired, order,
                                  scope, expected);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

inline auto
ThreadCtx::syncthreads()
{
    return BarrierAwaiter(this);
}

// --- inline hot path --------------------------------------------------
//
// Fast-mode accesses resolve synchronously inside await_ready; the chain
// await_ready -> performImmediate -> MemorySubsystem::performFast ->
// DeviceMemory::{load,store}Live runs once per simulated access, so every
// hop lives in a header and flattens into one call-free sequence.

inline void
Engine::applyAtomicOverrides(MemRequest& req) const
{
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;
    if (!is_atomic)
        return;
    if (options_.override_atomic_order)
        req.order = options_.forced_atomic_order;
    if (options_.override_atomic_scope)
        req.scope = options_.forced_atomic_scope;
}

inline u64
Engine::performImmediate(const ThreadInfo& who, u32 sm,
                         const MemRequest& req_in)
{
    // Request overrides — the atomic order/scope ablations and the
    // per-site repair table — are off in the common case (cached per
    // engine), and the request then flows through untouched: no 56-byte
    // copy per access. With overrides the mutated copy takes the
    // identical route, so results cannot differ between the two
    // entries. Site overrides run first: a plain access a repair
    // strengthens to atomic is then subject to the same order/scope
    // ablations as a source-level atomic would be.
    if (has_request_overrides_) [[unlikely]] {
        MemRequest req = req_in;
        if (options_.site_overrides != nullptr)
            options_.site_overrides->apply(req);
        applyAtomicOverrides(req);
        return performRouted(who, sm, req);
    }
    return performRouted(who, sm, req_in);
}

inline u64
Engine::performRouted(const ThreadInfo& who, u32 sm, const MemRequest& req)
{
    // Latency is overlapped with other resident warps; the issue slots
    // are not. Both terms matter: the ratio between an L1 hit and an L2
    // atomic as *observed throughput* is much smaller than the raw
    // latency ratio on a well-occupied GPU.
    if (use_fast_path_) {
        // Hookless fast path (selected once per launch): immediate
        // modes never split accesses, so every request is single-piece.
        const auto result = mem_subsystem_->performFast(who, sm, req);
        sm_cycles_[sm] += static_cast<u64>(spec_.issue_cycles) +
                          hiddenCycles(result.latency);
        return result.value_bits;
    }
    const auto result =
        mem_subsystem_->performPieces(who, sm, req, 0, req.pieces());
    sm_cycles_[sm] +=
        static_cast<u64>(spec_.issue_cycles) * req.pieces() +
        hiddenCycles(result.latency);
    return result.value_bits;
}

inline void
Engine::warpAccess(WarpCtx& w, MemRequest& tmpl, u32 count)
{
    // One override application serves the whole warp: every lane of a
    // warp op shares the op's site, so rewriting the template is the
    // same transformation per-lane application would produce. (When the
    // site table is not warp-uniform the launch fell back — the
    // eligibility contract from ISSUE's spec — but the rewrite below is
    // still per-op correct on the fallback route for the same reason.)
    if (has_request_overrides_) [[unlikely]] {
        if (options_.site_overrides != nullptr)
            options_.site_overrides->apply(tmpl);
        applyAtomicOverrides(tmpl);
    }
    if (warp_batch_live_) {
        WarpAccessBatch batch;
        batch.count = count;
        batch.first_thread = w.base_tid_;
        batch.addr = w.addr_;
        batch.value = w.value_;
        batch.compare = w.compare_;
        batch.out = w.out_;
        const auto hidden = [this](u64 latency) {
            return hiddenCycles(latency);
        };
        // Profiling is allowed on the batched route (kProf mirrors
        // routeTimingImpl); all other hooks were excluded by the
        // launch's eligibility check.
        const u64 charged =
            trace_ ? mem_subsystem_->performWarp<true>(w.sm_, tmpl, batch,
                                                       hidden)
                   : mem_subsystem_->performWarp<false>(w.sm_, tmpl, batch,
                                                        hidden);
        sm_cycles_[w.sm_] += charged;
        return;
    }
    // Per-lane fallback: the identical routed path scalar kernels take,
    // one synthesized lane identity per access. Warp kernels never
    // suspend, so there is no epoch (no barriers) and no word tearing.
    for (u32 l = 0; l < count; ++l) {
        MemRequest req = tmpl;
        req.addr = w.addr_[l];
        req.value = w.value_[l];
        req.compare = w.compare_[l];
        const ThreadInfo who{launch_counter_, w.base_tid_ + l, w.block_,
                             0};
        w.out_[l] = performRouted(who, w.sm_, req);
    }
}

inline MemAwaiterBase::MemAwaiterBase(ThreadCtx* ctx, const MemRequest& req)
    : ctx_(ctx)
{
    if (ctx->engine_->immediateMode()) {
        result_bits_ =
            ctx->engine_->performImmediate(ctx->info_, ctx->sm_, req);
        immediate_ = true;
    } else {
        new (&req_) MemRequest(req);
    }
}

inline u64
MemAwaiterBase::await_resume()
{
    return __builtin_expect(immediate_, 1) ? result_bits_
                                           : ctx_->pending_bits_;
}

// --- inline WarpCtx operations (need Engine) ---------------------------
//
// Each op gathers its lanes' addresses/operands into the SoA arrays and
// issues ONE warpAccess for the warp. Like the scalar chain, every hop
// lives in this header so a batched access flattens into a call-free
// loop over the lane arrays.

template <typename T, typename IdxFn>
void
WarpCtx::load(DevicePtr<T> ptr, IdxFn&& index_of, T* out, u32 count,
              AccessMode mode, MemoryOrder order, Scope scope)
{
    const u32 n = count == kAllLanes ? lane_count_ : count;
    for (u32 l = 0; l < n; ++l)
        addr_[l] = ptr.rawAt(index_of(l));
    MemRequest req =
        opTemplate(sizeof(T), MemOpKind::kLoad, mode, order, scope);
    engine_->warpAccess(*this, req, n);
    for (u32 l = 0; l < n; ++l)
        out[l] = detail::fromBits<T>(out_[l]);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::store(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& value_of,
               u32 count, AccessMode mode, MemoryOrder order, Scope scope)
{
    const u32 n = count == kAllLanes ? lane_count_ : count;
    for (u32 l = 0; l < n; ++l) {
        addr_[l] = ptr.rawAt(index_of(l));
        value_[l] = detail::toBits<T>(value_of(l));
    }
    MemRequest req =
        opTemplate(sizeof(T), MemOpKind::kStore, mode, order, scope);
    engine_->warpAccess(*this, req, n);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::rmwOp(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
               std::type_identity_t<T>* old_out, u32 count, RmwOp op, MemoryOrder order,
               Scope scope)
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "CUDA RMW atomics support 32- and 64-bit types only");
    const u32 n = count == kAllLanes ? lane_count_ : count;
    for (u32 l = 0; l < n; ++l) {
        addr_[l] = ptr.rawAt(index_of(l));
        value_[l] = detail::toBits<T>(operand_of(l));
    }
    MemRequest req = opTemplate(sizeof(T), MemOpKind::kRmw,
                                AccessMode::kAtomic, order, scope);
    req.rmw = op;
    engine_->warpAccess(*this, req, n);
    if (old_out != nullptr)
        for (u32 l = 0; l < n; ++l)
            old_out[l] = detail::fromBits<T>(out_[l]);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicAdd(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    constexpr RmwOp op =
        std::is_same_v<T, float> ? RmwOp::kAddF : RmwOp::kAdd;
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(operand_of), old_out, count, op, order,
          scope);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicMin(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(operand_of), old_out, count, RmwOp::kMin,
          order, scope);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicMax(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(operand_of), old_out, count, RmwOp::kMax,
          order, scope);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicAnd(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                   std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(operand_of), old_out, count, RmwOp::kAnd,
          order, scope);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicOr(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& operand_of,
                  std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(operand_of), old_out, count, RmwOp::kOr,
          order, scope);
}

template <typename T, typename IdxFn, typename ValFn>
void
WarpCtx::atomicExch(DevicePtr<T> ptr, IdxFn&& index_of, ValFn&& desired_of,
                    std::type_identity_t<T>* old_out, u32 count, MemoryOrder order, Scope scope)
{
    rmwOp(ptr, std::forward<IdxFn>(index_of),
          std::forward<ValFn>(desired_of), old_out, count, RmwOp::kExch,
          order, scope);
}

template <typename T, typename IdxFn, typename CmpFn, typename ValFn>
void
WarpCtx::atomicCas(DevicePtr<T> ptr, IdxFn&& index_of, CmpFn&& expected_of,
                   ValFn&& desired_of, std::type_identity_t<T>* old_out, u32 count,
                   MemoryOrder order, Scope scope)
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "CUDA RMW atomics support 32- and 64-bit types only");
    const u32 n = count == kAllLanes ? lane_count_ : count;
    for (u32 l = 0; l < n; ++l) {
        addr_[l] = ptr.rawAt(index_of(l));
        compare_[l] = detail::toBits<T>(expected_of(l));
        value_[l] = detail::toBits<T>(desired_of(l));
    }
    MemRequest req = opTemplate(sizeof(T), MemOpKind::kRmw,
                                AccessMode::kAtomic, order, scope);
    req.rmw = RmwOp::kCas;
    engine_->warpAccess(*this, req, n);
    if (old_out != nullptr)
        for (u32 l = 0; l < n; ++l)
            old_out[l] = detail::fromBits<T>(out_[l]);
}

inline void
WarpCtx::work(u32 cycles)
{
    // Every active lane does the work, exactly as `lanes()` scalar
    // threads each calling ThreadCtx::work(cycles) would charge.
    engine_->sm_cycles_[sm_] +=
        static_cast<u64>(cycles) * static_cast<u64>(lane_count_);
}

}  // namespace eclsim::simt
