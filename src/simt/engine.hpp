/**
 * @file
 * The SIMT execution engine.
 *
 * Engine runs kernels — C++20 coroutines of signature
 * `Task kernel(ThreadCtx&)` — over a simulated GPU described by a
 * GpuSpec. Two execution modes share all kernel code:
 *
 *  - kFast: threads run to completion (suspending only at __syncthreads),
 *    with every memory access routed through the cache/timing model and
 *    charged to the owning SM. Blocks are scheduled in a per-launch
 *    pseudo-random order, approximating the unordered block scheduling of
 *    a real GPU. This mode drives the paper's speedup tables.
 *
 *  - kInterleaved: all threads coexist and a cycle-driven scheduler
 *    interleaves them at memory-access granularity. Plain and volatile
 *    64-bit accesses execute as two 32-bit pieces with simulated time
 *    between them, so word tearing (paper Fig. 1) and data races are
 *    genuinely observable. This mode drives the race-detection tests.
 *
 * Kernel time is reported as max-over-SMs of accumulated cycles (fast
 * mode) or the final scheduler cycle (interleaved mode), lower-bounded by
 * the DRAM bandwidth term, then converted to milliseconds with the
 * spec's clock.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/types.hpp"
#include "simt/access.hpp"
#include "simt/device_memory.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/memory_subsystem.hpp"
#include "simt/race_detector.hpp"
#include "simt/task.hpp"

namespace eclsim::prof {
class TraceSession;
}

namespace eclsim::simt {

/** Execution mode (see file comment). */
enum class ExecMode : u8 {
    kFast,
    kInterleaved,
};

/** Engine configuration. */
struct EngineOptions
{
    ExecMode mode = ExecMode::kFast;
    /** Attach a dynamic race detector to every access. */
    bool detect_races = false;
    /** Schedule blocks in a per-launch pseudo-random order. */
    bool shuffle_blocks = true;
    /** Seed for the block-order shuffle (vary across measurement reps). */
    u64 seed = 1;
    MemoryOptions memory;
    /** Safety cap on simultaneously resident threads (interleaved mode). */
    u32 max_interleaved_threads = 1u << 22;
    /**
     * Ablation overrides: force every atomic operation's memory order /
     * scope, regardless of what the kernel requested. Used to reproduce
     * the claim that the libcu++ defaults (seq_cst, device scope) "can
     * lead to poor performance" versus the relaxed ordering the paper's
     * race-free codes use.
     */
    bool override_atomic_order = false;
    MemoryOrder forced_atomic_order = MemoryOrder::kSeqCst;
    bool override_atomic_scope = false;
    Scope forced_atomic_scope = Scope::kDevice;
    /**
     * Optional profiling sink (eclsim::prof). When set, the engine
     * records kernel-launch spans and per-SM block-residency spans on
     * the session's timeline, the memory subsystem accumulates per-path
     * counters (sim/mem/...), and the race detector counts its checks
     * and conflicts (sim/race/...). Null disables all instrumentation;
     * the hooks then cost one pointer test per launch.
     */
    prof::TraceSession* trace = nullptr;
    /**
     * Optional perturbation hooks (eclsim::chaos): adversarial block
     * schedules, amplified staleness, store-visibility delays, transient
     * stalls, and harmful fault injection. The hooks object must outlive
     * the engine and must not be shared with another concurrently
     * running engine (it carries its own RNG). Null is free.
     */
    PerturbationHooks* perturb = nullptr;
};

/** Shape of one kernel launch. */
struct LaunchConfig
{
    u32 grid = 1;      ///< number of blocks (1-D)
    u32 block_x = 256; ///< threads per block, x dimension
    u32 block_y = 1;   ///< threads per block, y dimension
    u32 shared_bytes = 0;

    u32 blockSize() const { return block_x * block_y; }
    u64
    totalThreads() const
    {
        return static_cast<u64>(grid) * blockSize();
    }
};

/** Convenience: 1-D launch covering at least work items. */
LaunchConfig launchFor(u64 work, u32 block = 256);

/** Result of one kernel launch. */
struct LaunchStats
{
    std::string kernel;
    u64 cycles = 0;
    double ms = 0.0;
    MemoryCounters mem;

    /** Accumulate another launch's cycles, time, and traffic. */
    LaunchStats& operator+=(const LaunchStats& other);
};

namespace detail {

template <typename T>
constexpr u64
toBits(T value)
{
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8);
    using U = std::make_unsigned_t<T>;
    return static_cast<u64>(static_cast<U>(value));
}

template <typename T>
constexpr T
fromBits(u64 bits)
{
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8);
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(bits));
}

}  // namespace detail

class Engine;

/**
 * Per-thread execution context: the "device API" kernels program
 * against. A ThreadCtx is created by the engine for every simulated
 * thread and stays valid for the thread's whole lifetime.
 */
class ThreadCtx
{
  public:
    // --- identification (CUDA built-in variable analogues) --------------
    u32 globalThreadId() const { return info_.thread; }
    u32 blockId() const { return info_.block; }
    u32 threadInBlock() const { return thread_in_block_; }
    u32 threadX() const { return thread_in_block_ % block_x_; }
    u32 threadY() const { return thread_in_block_ / block_x_; }
    u32 blockDimX() const { return block_x_; }
    u32 blockDimY() const { return block_y_; }
    u32 gridDim() const { return grid_; }
    /** Total threads in the launch (gridDim * blockDim). */
    u32 gridSize() const { return grid_ * block_x_ * block_y_; }

    // --- memory operations ----------------------------------------------

    /**
     * Attribute the next memory operation to a source site:
     * `co_await t.at(ECL_SITE("compute parent[] jump-load")).load(...)`.
     * The site id is consumed by the next request built on this context,
     * so race reports can name the racing source access. Unattributed
     * operations carry racecheck::kUnknownSite.
     */
    ThreadCtx&
    at(u32 site)
    {
        next_site_ = site;
        return *this;
    }

    /** Awaitable load; co_await yields the value of type T. Order and
     *  scope only apply to mode == kAtomic. */
    template <typename T>
    auto load(DevicePtr<T> ptr, u64 index = 0,
              AccessMode mode = AccessMode::kPlain,
              MemoryOrder order = MemoryOrder::kRelaxed,
              Scope scope = Scope::kDevice);

    /** Awaitable store. */
    template <typename T>
    auto store(DevicePtr<T> ptr, u64 index, T value,
               AccessMode mode = AccessMode::kPlain,
               MemoryOrder order = MemoryOrder::kRelaxed,
               Scope scope = Scope::kDevice);

    template <typename T>
    auto atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                  MemoryOrder order = MemoryOrder::kRelaxed,
                  Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                    MemoryOrder order = MemoryOrder::kRelaxed,
                    Scope scope = Scope::kDevice);
    /** Compare-and-swap; returns the old value. */
    template <typename T>
    auto atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);

    /** Block-wide barrier (__syncthreads analogue). */
    auto syncthreads();

    /** Charge pure-compute cycles to this thread's SM. */
    void work(u32 cycles);

    /**
     * Carve count elements of T from the block's shared memory. Threads
     * of a block making identical sharedArray() call sequences receive
     * identical (shared) storage, like CUDA __shared__ declarations.
     * Shared-memory accesses are untimed; charge work() where relevant.
     */
    template <typename T>
    T*
    sharedArray(u32 count)
    {
        const u32 align = alignof(T);
        shared_cursor_ = (shared_cursor_ + align - 1) / align * align;
        T* out = reinterpret_cast<T*>(shared_base_ + shared_cursor_);
        shared_cursor_ += count * sizeof(T);
        return out;
    }

  private:
    friend class Engine;
    template <typename T>
    friend class LoadAwaiter;
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;

    /** Consume the pending site attribution (one request). */
    u32
    takeSite()
    {
        const u32 site = next_site_;
        next_site_ = 0;
        return site;
    }

    Engine* engine_ = nullptr;
    Task task_;
    ThreadInfo info_;
    u32 next_site_ = 0;  ///< site for the next request (see at())
    u32 sm_ = 0;
    u32 thread_in_block_ = 0;
    u32 block_x_ = 1, block_y_ = 1, grid_ = 1;
    u8* shared_base_ = nullptr;
    u32 shared_cursor_ = 0;

    // interleaved-mode scheduling state
    MemRequest pending_req_;
    u32 pending_pieces_done_ = 0;
    u64 pending_bits_ = 0;
    bool has_pending_ = false;
    u64 ready_cycle_ = 0;
    u64 deferred_work_ = 0;
    bool at_barrier_ = false;
    bool finished_ = false;
};

/** Untyped awaitable shared by all memory operations. */
class MemAwaiterBase
{
  public:
    MemAwaiterBase(ThreadCtx* ctx, const MemRequest& req)
        : ctx_(ctx), req_(req)
    {}

    bool await_ready();
    void await_suspend(std::coroutine_handle<> handle);
    u64 await_resume();

  protected:
    ThreadCtx* ctx_;
    MemRequest req_;
    u64 result_bits_ = 0;
    bool immediate_ = false;
};

/** Typed load awaitable. */
template <typename T>
class LoadAwaiter : public MemAwaiterBase
{
  public:
    using MemAwaiterBase::MemAwaiterBase;
    T
    await_resume()
    {
        return detail::fromBits<T>(MemAwaiterBase::await_resume());
    }
};

/** Barrier awaitable. */
class BarrierAwaiter
{
  public:
    explicit BarrierAwaiter(ThreadCtx* ctx) : ctx_(ctx) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() {}

  private:
    ThreadCtx* ctx_;
};

/** The SIMT execution engine (see file comment). */
class Engine
{
  public:
    Engine(GpuSpec spec, DeviceMemory& memory, EngineOptions options = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Synchronously execute a kernel over the given launch shape. */
    LaunchStats
    launch(const std::string& name, const LaunchConfig& config,
           const std::function<Task(ThreadCtx&)>& kernel);

    const GpuSpec& spec() const { return spec_; }
    DeviceMemory& memory() { return memory_; }
    MemorySubsystem& memorySubsystem() { return *mem_subsystem_; }
    RaceDetector* raceDetector() { return detector_.get(); }
    const EngineOptions& options() const { return options_; }

    /** Simulated milliseconds accumulated over all launches. */
    double elapsedMs() const { return elapsed_ms_; }
    void resetElapsed() { elapsed_ms_ = 0.0; }
    u32 launchCount() const { return launch_counter_; }

    /** Reseed the block-order shuffle (between measurement reps). */
    void setSeed(u64 seed) { options_.seed = seed; }

  private:
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;
    friend class ThreadCtx;

    bool fastMode() const { return options_.mode == ExecMode::kFast; }

    /** Apply the EngineOptions order/scope ablation overrides. */
    void applyAtomicOverrides(MemRequest& req) const;
    /** Fast-mode inline access: execute, charge the SM, return bits. */
    u64 performImmediate(ThreadCtx& ctx, const MemRequest& req);
    /** Interleaved-mode access issue (first piece now, rest at wake). */
    void submitAccess(ThreadCtx& ctx, const MemRequest& req);
    /** Barrier arrival (both modes). */
    void arriveBarrier(ThreadCtx& ctx);
    void chargeWork(ThreadCtx& ctx, u32 cycles);

    std::vector<u32> blockOrder(u32 grid) const;
    u64 finishLaunch(u64 cycles, const std::string& name,
                     LaunchStats& stats);

    /** Trace hooks (no-ops when options_.trace is null). */
    void traceLaunchBegin(const std::string& name,
                          const LaunchConfig& config);
    void traceLaunchEnd(const LaunchStats& stats, u64 races_before);
    void traceBlockSpan(u32 sm, u32 block, const std::string& name,
                        u64 sm_begin, u64 sm_end);

    void runFast(const LaunchConfig& config,
                 const std::function<Task(ThreadCtx&)>& kernel,
                 LaunchStats& stats);
    void runInterleaved(const LaunchConfig& config,
                        const std::function<Task(ThreadCtx&)>& kernel,
                        LaunchStats& stats);

    GpuSpec spec_;
    DeviceMemory& memory_;
    EngineOptions options_;
    std::unique_ptr<RaceDetector> detector_;
    std::unique_ptr<MemorySubsystem> mem_subsystem_;

    std::vector<u64> sm_cycles_;     ///< fast mode per-SM accumulators
    std::vector<u32> barrier_count_; ///< per-block arrived counters
    std::vector<u32> block_alive_;   ///< per-block live thread counters
    u64 now_ = 0;                    ///< interleaved global cycle
    double elapsed_ms_ = 0.0;
    u32 launch_counter_ = 0;

    // profiling state (meaningful only when options_.trace is set)
    prof::TraceSession* trace_ = nullptr;
    u32 kernel_track_ = 0;   ///< session track for kernel-launch spans
    u64 trace_base_ = 0;     ///< session timestamp of the current launch

    static constexpr u32 kIssueCycles = 2;
    static constexpr u32 kBarrierCycles = 20;
    /** Launches wider than this get one residency span per SM instead
     *  of one per block, bounding the trace size. */
    static constexpr u32 kMaxTracedBlockSpans = 4096;
};

// --- inline ThreadCtx method definitions (need Engine) -------------------

template <typename T>
auto
ThreadCtx::load(DevicePtr<T> ptr, u64 index, AccessMode mode,
                MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kLoad;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::store(DevicePtr<T> ptr, u64 index, T value, AccessMode mode,
                 MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kStore;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.value = detail::toBits(value);
    req.site = takeSite();
    return MemAwaiterBase(this, req);
}

namespace detail {

template <typename T>
MemRequest
rmwRequest(DevicePtr<T> ptr, u64 index, RmwOp op, T operand,
           MemoryOrder order, Scope scope, T compare = T{})
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "CUDA RMW atomics support 32- and 64-bit types only");
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kRmw;
    req.mode = AccessMode::kAtomic;
    req.rmw = op;
    req.order = order;
    req.scope = scope;
    req.value = toBits(operand);
    req.compare = toBits(compare);
    return req;
}

}  // namespace detail

template <typename T>
auto
ThreadCtx::atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kAdd, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMin, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMax, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kAnd, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                    MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kOr, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                      MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kExch, desired, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kCas, desired, order,
                                  scope, expected);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

inline auto
ThreadCtx::syncthreads()
{
    return BarrierAwaiter(this);
}

}  // namespace eclsim::simt
