/**
 * @file
 * The SIMT execution engine.
 *
 * Engine runs kernels — C++20 coroutines of signature
 * `Task kernel(ThreadCtx&)` — over a simulated GPU described by a
 * GpuSpec. Two execution modes share all kernel code:
 *
 *  - kFast: threads run to completion (suspending only at __syncthreads),
 *    with every memory access routed through the cache/timing model and
 *    charged to the owning SM. Blocks are scheduled in a per-launch
 *    pseudo-random order, approximating the unordered block scheduling of
 *    a real GPU. This mode drives the paper's speedup tables.
 *
 *  - kInterleaved: all threads coexist and a cycle-driven scheduler
 *    interleaves them at memory-access granularity. Plain and volatile
 *    64-bit accesses execute as two 32-bit pieces with simulated time
 *    between them, so word tearing (paper Fig. 1) and data races are
 *    genuinely observable. This mode drives the race-detection tests.
 *
 * Kernel time is reported as max-over-SMs of accumulated cycles (fast
 * mode) or the final scheduler cycle (interleaved mode), lower-bounded by
 * the DRAM bandwidth term, then converted to milliseconds with the
 * spec's clock.
 */
#pragma once

#include <bit>
#include <functional>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/logging.hpp"
#include "core/types.hpp"
#include "simt/access.hpp"
#include "simt/device_memory.hpp"
#include "simt/frame_pool.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/memory_subsystem.hpp"
#include "simt/race_detector.hpp"
#include "simt/site_override.hpp"
#include "simt/task.hpp"

namespace eclsim::prof {
class TraceSession;
}

namespace eclsim::simt {

/** Execution mode (see file comment). */
enum class ExecMode : u8 {
    kFast,
    kInterleaved,
};

/** Engine configuration. */
struct EngineOptions
{
    ExecMode mode = ExecMode::kFast;
    /** Attach a dynamic race detector to every access. */
    bool detect_races = false;
    /** Schedule blocks in a per-launch pseudo-random order. */
    bool shuffle_blocks = true;
    /** Seed for the block-order shuffle (vary across measurement reps). */
    u64 seed = 1;
    MemoryOptions memory;
    /** Safety cap on simultaneously resident threads (interleaved mode). */
    u32 max_interleaved_threads = 1u << 22;
    /**
     * Ablation overrides: force every atomic operation's memory order /
     * scope, regardless of what the kernel requested. Used to reproduce
     * the claim that the libcu++ defaults (seq_cst, device scope) "can
     * lead to poor performance" versus the relaxed ordering the paper's
     * race-free codes use.
     */
    bool override_atomic_order = false;
    MemoryOrder forced_atomic_order = MemoryOrder::kSeqCst;
    bool override_atomic_scope = false;
    Scope forced_atomic_scope = Scope::kDevice;
    /**
     * Per-site access-mode override table (the repair subsystem's
     * applier, simt/site_override.hpp): requests whose MemRequest::site
     * appears in the table are strengthened to the table's
     * mode/order/scope before routing, on both the fast and the general
     * access path — the source-edit-free equivalent of the paper's
     * by-hand atomic conversions. Strengthening only: RMWs and
     * already-atomic accesses are untouched. The table must outlive the
     * engine and must not be mutated while it runs; null (or an empty
     * table) keeps the unoverridden hot path free of any cost.
     */
    const SiteOverrideTable* site_overrides = nullptr;
    /**
     * Optional profiling sink (eclsim::prof). When set, the engine
     * records kernel-launch spans and per-SM block-residency spans on
     * the session's timeline, the memory subsystem accumulates per-path
     * counters (sim/mem/...), and the race detector counts its checks
     * and conflicts (sim/race/...). Null disables all instrumentation;
     * the hooks then cost one pointer test per launch.
     */
    prof::TraceSession* trace = nullptr;
    /**
     * Optional perturbation hooks (eclsim::chaos): adversarial block
     * schedules, amplified staleness, store-visibility delays, transient
     * stalls, and harmful fault injection. The hooks object must outlive
     * the engine and must not be shared with another concurrently
     * running engine (it carries its own RNG). Null is free.
     */
    PerturbationHooks* perturb = nullptr;
    /**
     * Optional passive access observer (simt/observer.hpp,
     * eclsim::staticrace's recording substrate). When set, the engine
     * reports each kernel launch (name + shape) and every executed
     * access piece to the observer, with the same address/size
     * semantics the race detector sees. The observer must outlive the
     * engine and must not be shared with another concurrently running
     * engine. Installing one disables the hookless fast path. Null is
     * free.
     */
    AccessObserver* observer = nullptr;
    /**
     * Disable the hookless fast access path even when no hooks are
     * installed, forcing every access through the general
     * MemorySubsystem::performPieces route. The two paths are
     * bit-identical by contract; this switch exists so tests and
     * bench/simbench can prove it (and measure its cost).
     */
    bool force_slow_path = false;
};

/** Shape of one kernel launch. */
struct LaunchConfig
{
    u32 grid = 1;      ///< number of blocks (1-D)
    u32 block_x = 256; ///< threads per block, x dimension
    u32 block_y = 1;   ///< threads per block, y dimension
    u32 shared_bytes = 0;

    u32 blockSize() const { return block_x * block_y; }
    u64
    totalThreads() const
    {
        return static_cast<u64>(grid) * blockSize();
    }
};

/** Convenience: 1-D launch covering at least work items. */
LaunchConfig launchFor(u64 work, u32 block = 256);

/** Result of one kernel launch. */
struct LaunchStats
{
    /**
     * Kernel name, viewing the string passed to Engine::launch. Call
     * sites pass string literals (or otherwise stable storage), so the
     * view stays valid for the stats' lifetime without a per-launch
     * std::string copy.
     */
    std::string_view kernel;
    u64 cycles = 0;
    double ms = 0.0;
    MemoryCounters mem;

    /** Accumulate another launch's cycles, time, and traffic. */
    LaunchStats& operator+=(const LaunchStats& other);
};

namespace detail {

template <typename T>
constexpr u64
toBits(T value)
{
    static_assert((std::is_integral_v<T> || std::is_same_v<T, float>) &&
                  sizeof(T) <= 8);
    if constexpr (std::is_same_v<T, float>) {
        // Floats travel through the memory system as their IEEE-754 bit
        // pattern, zero-extended — exactly a 32-bit register on the GPU.
        return static_cast<u64>(std::bit_cast<u32>(value));
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<u64>(static_cast<U>(value));
    }
}

template <typename T>
constexpr T
fromBits(u64 bits)
{
    static_assert((std::is_integral_v<T> || std::is_same_v<T, float>) &&
                  sizeof(T) <= 8);
    if constexpr (std::is_same_v<T, float>) {
        return std::bit_cast<float>(static_cast<u32>(bits));
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<T>(static_cast<U>(bits));
    }
}

}  // namespace detail

class Engine;

/**
 * Per-thread execution context: the "device API" kernels program
 * against. A ThreadCtx is created by the engine for every simulated
 * thread and stays valid for the thread's whole lifetime.
 */
class ThreadCtx
{
  public:
    // --- identification (CUDA built-in variable analogues) --------------
    u32 globalThreadId() const { return info_.thread; }
    u32 blockId() const { return info_.block; }
    u32 threadInBlock() const { return thread_in_block_; }
    u32 threadX() const { return thread_in_block_ % block_x_; }
    u32 threadY() const { return thread_in_block_ / block_x_; }
    u32 blockDimX() const { return block_x_; }
    u32 blockDimY() const { return block_y_; }
    u32 gridDim() const { return grid_; }
    /** Total threads in the launch (gridDim * blockDim). */
    u32 gridSize() const { return grid_ * block_x_ * block_y_; }

    // --- memory operations ----------------------------------------------

    /**
     * Attribute the next memory operation to a source site:
     * `co_await t.at(ECL_SITE("compute parent[] jump-load")).load(...)`.
     * The site id is consumed by the next request built on this context,
     * so race reports can name the racing source access. Unattributed
     * operations carry racecheck::kUnknownSite.
     */
    ThreadCtx&
    at(u32 site)
    {
        next_site_ = site;
        return *this;
    }

    /** Awaitable load; co_await yields the value of type T. Order and
     *  scope only apply to mode == kAtomic. */
    template <typename T>
    auto load(DevicePtr<T> ptr, u64 index = 0,
              AccessMode mode = AccessMode::kPlain,
              MemoryOrder order = MemoryOrder::kRelaxed,
              Scope scope = Scope::kDevice);

    /** Awaitable store. */
    template <typename T>
    auto store(DevicePtr<T> ptr, u64 index, T value,
               AccessMode mode = AccessMode::kPlain,
               MemoryOrder order = MemoryOrder::kRelaxed,
               Scope scope = Scope::kDevice);

    template <typename T>
    auto atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                  MemoryOrder order = MemoryOrder::kRelaxed,
                  Scope scope = Scope::kDevice);
    template <typename T>
    auto atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                    MemoryOrder order = MemoryOrder::kRelaxed,
                    Scope scope = Scope::kDevice);
    /** Compare-and-swap; returns the old value. */
    template <typename T>
    auto atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                   MemoryOrder order = MemoryOrder::kRelaxed,
                   Scope scope = Scope::kDevice);

    /** Block-wide barrier (__syncthreads analogue). */
    auto syncthreads();

    /** Charge pure-compute cycles to this thread's SM. */
    void work(u32 cycles);

    /**
     * Carve count elements of T from the block's shared memory. Threads
     * of a block making identical sharedArray() call sequences receive
     * identical (shared) storage, like CUDA __shared__ declarations.
     * Shared-memory accesses are untimed; charge work() where relevant.
     */
    template <typename T>
    T*
    sharedArray(u32 count)
    {
        const u32 align = alignof(T);
        shared_cursor_ = (shared_cursor_ + align - 1) / align * align;
        const u64 end = static_cast<u64>(shared_cursor_) +
                        static_cast<u64>(count) * sizeof(T);
        if (end > shared_limit_) {
            // User error, not a simulator bug: the kernel carved more
            // shared memory than its LaunchConfig declared — on real CUDA
            // this is an out-of-bounds __shared__ access.
            fatal("sharedArray({} x {} bytes) overflows shared memory: "
                  "block needs {} bytes but the launch declared "
                  "shared_bytes = {}",
                  count, sizeof(T), end, shared_limit_);
        }
        T* out = reinterpret_cast<T*>(shared_base_ + shared_cursor_);
        shared_cursor_ += count * sizeof(T);
        return out;
    }

  private:
    friend class Engine;
    template <typename T>
    friend class LoadAwaiter;
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;

    /** Consume the pending site attribution (one request). */
    u32
    takeSite()
    {
        const u32 site = next_site_;
        next_site_ = 0;
        return site;
    }

    /**
     * Reset the slots the previous occupant of this scratch ThreadCtx
     * may have dirtied, without the full-struct copy `ctx = ThreadCtx()`
     * would cost (pending_req_ alone is 56 bytes; runFast re-resets one
     * ThreadCtx per simulated thread). Identification fields are
     * excluded — the engine overwrites them right after.
     */
    void
    resetForReuse()
    {
        task_ = Task();  // destroys the previous thread's frame
        next_site_ = 0;
        shared_cursor_ = 0;
        pending_pieces_done_ = 0;
        pending_bits_ = 0;
        has_pending_ = false;
        ready_cycle_ = 0;
        deferred_work_ = 0;
        at_barrier_ = false;
        finished_ = false;
    }

    Engine* engine_ = nullptr;
    Task task_;
    ThreadInfo info_;
    u32 next_site_ = 0;  ///< site for the next request (see at())
    u32 sm_ = 0;
    u32 thread_in_block_ = 0;
    u32 block_x_ = 1, block_y_ = 1, grid_ = 1;
    u8* shared_base_ = nullptr;
    u32 shared_cursor_ = 0;
    u32 shared_limit_ = 0;  ///< LaunchConfig::shared_bytes of the launch

    // interleaved-mode scheduling state
    MemRequest pending_req_;
    u32 pending_pieces_done_ = 0;
    u64 pending_bits_ = 0;
    bool has_pending_ = false;
    u64 ready_cycle_ = 0;
    u64 deferred_work_ = 0;
    bool at_barrier_ = false;
    bool finished_ = false;
};

/** Untyped awaitable shared by all memory operations. */
class MemAwaiterBase
{
  public:
    /**
     * Fast mode resolves the access right here in the constructor —
     * before the co_await machinery even asks await_ready — so the
     * request never has to be copied into the awaiter (and thus never
     * spills into the coroutine frame). Only the interleaved engine,
     * which genuinely suspends, stores the request for await_suspend.
     */
    MemAwaiterBase(ThreadCtx* ctx, const MemRequest& req);

    /** The expect hint moves the suspend machinery out of the hot
     *  fall-through path; fast mode always resolves immediately. */
    bool await_ready() { return __builtin_expect(immediate_, 1); }
    void await_suspend(std::coroutine_handle<> handle);
    u64 await_resume();

  protected:
    static_assert(std::is_trivially_copyable_v<MemRequest> &&
                      std::is_trivially_destructible_v<MemRequest>,
                  "req_ lives in a union and is placement-constructed");

    ThreadCtx* ctx_;
    union {
        MemRequest req_;  ///< populated only when the access suspends
    };
    u64 result_bits_ = 0;
    bool immediate_ = false;
};

/** Typed load awaitable. */
template <typename T>
class LoadAwaiter : public MemAwaiterBase
{
  public:
    using MemAwaiterBase::MemAwaiterBase;
    T
    await_resume()
    {
        return detail::fromBits<T>(MemAwaiterBase::await_resume());
    }
};

/** Barrier awaitable. */
class BarrierAwaiter
{
  public:
    explicit BarrierAwaiter(ThreadCtx* ctx) : ctx_(ctx) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() {}

  private:
    ThreadCtx* ctx_;
};

/** The SIMT execution engine (see file comment). */
class Engine
{
  public:
    Engine(GpuSpec spec, DeviceMemory& memory, EngineOptions options = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /**
     * Synchronously execute a kernel over the given launch shape. The
     * name must outlive any LaunchStats that references it (call sites
     * pass string literals).
     */
    LaunchStats
    launch(std::string_view name, const LaunchConfig& config,
           const std::function<Task(ThreadCtx&)>& kernel);

    const GpuSpec& spec() const { return spec_; }
    DeviceMemory& memory() { return memory_; }
    MemorySubsystem& memorySubsystem() { return *mem_subsystem_; }
    RaceDetector* raceDetector() { return detector_.get(); }
    const EngineOptions& options() const { return options_; }

    /** Simulated milliseconds accumulated over all launches. */
    double elapsedMs() const { return elapsed_ms_; }
    void resetElapsed() { elapsed_ms_ = 0.0; }
    u32 launchCount() const { return launch_counter_; }

    /** Reseed the block-order shuffle (between measurement reps). */
    void setSeed(u64 seed) { options_.seed = seed; }

    /** Coroutine-frame pool statistics (tests and bench/simbench). */
    const FramePool& framePool() const { return frame_pool_; }
    /** True if the current/last launch took the hookless access path. */
    bool usedFastPath() const { return use_fast_path_; }

  private:
    friend class MemAwaiterBase;
    friend class BarrierAwaiter;
    friend class ThreadCtx;

    bool fastMode() const { return options_.mode == ExecMode::kFast; }

    /** Apply the EngineOptions order/scope ablation overrides. */
    void applyAtomicOverrides(MemRequest& req) const;
    /** Fast-mode inline access: execute, charge the SM, return bits. */
    u64 performImmediate(ThreadCtx& ctx, const MemRequest& req);
    /** Route an (override-applied) request to the selected path. */
    u64 performRouted(ThreadCtx& ctx, const MemRequest& req);
    /** Interleaved-mode access issue (first piece now, rest at wake). */
    void submitAccess(ThreadCtx& ctx, const MemRequest& req);
    /** Barrier arrival (both modes). */
    void arriveBarrier(ThreadCtx& ctx);
    void chargeWork(ThreadCtx& ctx, u32 cycles);

    /**
     * Latency hidden behind other resident warps. Memoizes
     * u64(double(latency) / spec_.latency_hiding) per distinct latency —
     * the exact expression the engine has always charged, computed once
     * instead of a float divide per access.
     */
    u64
    hiddenCycles(u64 latency)
    {
        if (latency >= hidden_memo_.size()) [[unlikely]]
            hidden_memo_.resize(latency + 1, 0);
        u64& slot = hidden_memo_[latency];
        if (slot == 0)
            slot = static_cast<u64>(static_cast<double>(latency) /
                                    spec_.latency_hiding) +
                   1;  // +1 sentinel: 0 means "not computed yet"
        return slot - 1;
    }

    /** Shuffled block schedule, built into reused per-launch scratch. */
    const std::vector<u32>& blockOrder(u32 grid);

    /** Trace hooks (no-ops when options_.trace is null). */
    void traceLaunchBegin(std::string_view name,
                          const LaunchConfig& config);
    void traceLaunchEnd(const LaunchStats& stats, u64 races_before);
    void traceBlockSpan(u32 sm, u32 block, std::string_view name,
                        u64 sm_begin, u64 sm_end);

    void runFast(const LaunchConfig& config,
                 const std::function<Task(ThreadCtx&)>& kernel,
                 LaunchStats& stats);
    void runInterleaved(const LaunchConfig& config,
                        const std::function<Task(ThreadCtx&)>& kernel,
                        LaunchStats& stats);

    GpuSpec spec_;
    DeviceMemory& memory_;
    EngineOptions options_;
    std::unique_ptr<RaceDetector> detector_;
    std::unique_ptr<MemorySubsystem> mem_subsystem_;

    /**
     * Coroutine-frame pool for this engine's launches. Declared before
     * every Task-holding member (thread_scratch_) so it is destroyed
     * after them: a frame must never outlive the pool that owns it.
     */
    FramePool frame_pool_;

    std::vector<u64> sm_cycles_;     ///< fast mode per-SM accumulators
    std::vector<u32> barrier_count_; ///< per-block arrived counters
    std::vector<u32> block_alive_;   ///< per-block live thread counters
    u64 now_ = 0;                    ///< interleaved global cycle
    double elapsed_ms_ = 0.0;
    u32 launch_counter_ = 0;
    /** Selected once per launch: hookless memory subsystem, fast mode,
     *  and not overridden by EngineOptions::force_slow_path. */
    bool use_fast_path_ = false;
    /** Any request-rewriting override configured — atomic order/scope
     *  ablations or a nonempty per-site table (cached; see
     *  performImmediate). */
    bool has_request_overrides_ = false;

    // Per-launch scratch, reused across launches so a sweep's steady
    // state performs no per-launch allocation. thread_scratch_ is
    // cleared at the end of every fast launch, returning all coroutine
    // frames to frame_pool_.
    std::vector<u32> block_order_;          ///< blockOrder() result
    std::vector<u8> shared_scratch_;        ///< fast-mode shared memory
    std::vector<ThreadCtx> thread_scratch_; ///< fast-mode block contexts
    std::vector<u32> participants_scratch_; ///< barrier participant ids
    std::vector<u64> hidden_memo_;          ///< hiddenCycles() cache

    // profiling state (meaningful only when options_.trace is set)
    prof::TraceSession* trace_ = nullptr;
    u32 kernel_track_ = 0;   ///< session track for kernel-launch spans
    u64 trace_base_ = 0;     ///< session timestamp of the current launch

    static constexpr u32 kIssueCycles = 2;
    static constexpr u32 kBarrierCycles = 20;
    /** Launches wider than this get one residency span per SM instead
     *  of one per block, bounding the trace size. */
    static constexpr u32 kMaxTracedBlockSpans = 4096;
};

// --- inline ThreadCtx method definitions (need Engine) -------------------

template <typename T>
auto
ThreadCtx::load(DevicePtr<T> ptr, u64 index, AccessMode mode,
                MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kLoad;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::store(DevicePtr<T> ptr, u64 index, T value, AccessMode mode,
                 MemoryOrder order, Scope scope)
{
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kStore;
    req.mode = mode;
    req.order = order;
    req.scope = scope;
    req.value = detail::toBits(value);
    req.site = takeSite();
    return MemAwaiterBase(this, req);
}

namespace detail {

template <typename T>
MemRequest
rmwRequest(DevicePtr<T> ptr, u64 index, RmwOp op, T operand,
           MemoryOrder order, Scope scope, T compare = T{})
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "CUDA RMW atomics support 32- and 64-bit types only");
    MemRequest req;
    req.addr = ptr.rawAt(index);
    req.size = sizeof(T);
    req.kind = MemOpKind::kRmw;
    req.mode = AccessMode::kAtomic;
    req.rmw = op;
    req.order = order;
    req.scope = scope;
    req.value = toBits(operand);
    req.compare = toBits(compare);
    return req;
}

}  // namespace detail

template <typename T>
auto
ThreadCtx::atomicAdd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    // Float addition is not a bit-pattern add: route it through its own
    // RMW operator (CUDA's atomicAdd(float*) analogue).
    constexpr RmwOp op =
        std::is_same_v<T, float> ? RmwOp::kAddF : RmwOp::kAdd;
    auto req = detail::rmwRequest(ptr, index, op, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMin(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMin, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicMax(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kMax, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicAnd(DevicePtr<T> ptr, u64 index, T operand,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kAnd, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicOr(DevicePtr<T> ptr, u64 index, T operand,
                    MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kOr, operand, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicExch(DevicePtr<T> ptr, u64 index, T desired,
                      MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kExch, desired, order,
                                  scope);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

template <typename T>
auto
ThreadCtx::atomicCas(DevicePtr<T> ptr, u64 index, T expected, T desired,
                     MemoryOrder order, Scope scope)
{
    auto req = detail::rmwRequest(ptr, index, RmwOp::kCas, desired, order,
                                  scope, expected);
    req.site = takeSite();
    return LoadAwaiter<T>(this, req);
}

inline auto
ThreadCtx::syncthreads()
{
    return BarrierAwaiter(this);
}

// --- inline hot path --------------------------------------------------
//
// Fast-mode accesses resolve synchronously inside await_ready; the chain
// await_ready -> performImmediate -> MemorySubsystem::performFast ->
// DeviceMemory::{load,store}Live runs once per simulated access, so every
// hop lives in a header and flattens into one call-free sequence.

inline void
Engine::applyAtomicOverrides(MemRequest& req) const
{
    const bool is_atomic =
        req.kind == MemOpKind::kRmw || req.mode == AccessMode::kAtomic;
    if (!is_atomic)
        return;
    if (options_.override_atomic_order)
        req.order = options_.forced_atomic_order;
    if (options_.override_atomic_scope)
        req.scope = options_.forced_atomic_scope;
}

inline u64
Engine::performImmediate(ThreadCtx& ctx, const MemRequest& req_in)
{
    // Request overrides — the atomic order/scope ablations and the
    // per-site repair table — are off in the common case (cached per
    // engine), and the request then flows through untouched: no 56-byte
    // copy per access. With overrides the mutated copy takes the
    // identical route, so results cannot differ between the two
    // entries. Site overrides run first: a plain access a repair
    // strengthens to atomic is then subject to the same order/scope
    // ablations as a source-level atomic would be.
    if (has_request_overrides_) [[unlikely]] {
        MemRequest req = req_in;
        if (options_.site_overrides != nullptr)
            options_.site_overrides->apply(req);
        applyAtomicOverrides(req);
        return performRouted(ctx, req);
    }
    return performRouted(ctx, req_in);
}

inline u64
Engine::performRouted(ThreadCtx& ctx, const MemRequest& req)
{
    // Latency is overlapped with other resident warps; the issue slots
    // are not. Both terms matter: the ratio between an L1 hit and an L2
    // atomic as *observed throughput* is much smaller than the raw
    // latency ratio on a well-occupied GPU.
    if (use_fast_path_) {
        // Hookless fast path (selected once per launch): fast mode
        // never splits accesses, so every request is single-piece.
        const auto result =
            mem_subsystem_->performFast(ctx.info_, ctx.sm_, req);
        sm_cycles_[ctx.sm_] += static_cast<u64>(spec_.issue_cycles) +
                               hiddenCycles(result.latency);
        return result.value_bits;
    }
    const auto result = mem_subsystem_->performPieces(
        ctx.info_, ctx.sm_, req, 0, req.pieces());
    sm_cycles_[ctx.sm_] +=
        static_cast<u64>(spec_.issue_cycles) * req.pieces() +
        hiddenCycles(result.latency);
    return result.value_bits;
}

inline MemAwaiterBase::MemAwaiterBase(ThreadCtx* ctx, const MemRequest& req)
    : ctx_(ctx)
{
    if (ctx->engine_->fastMode()) {
        result_bits_ = ctx->engine_->performImmediate(*ctx, req);
        immediate_ = true;
    } else {
        new (&req_) MemRequest(req);
    }
}

inline u64
MemAwaiterBase::await_resume()
{
    return __builtin_expect(immediate_, 1) ? result_bits_
                                           : ctx_->pending_bits_;
}

}  // namespace eclsim::simt
