/**
 * @file
 * Word tearing demo: the paper's Fig. 1 scenario, executable.
 *
 * A shared 64-bit variable holds -1. Thread T1 stores 0 to it with a
 * plain (non-atomic) store, while other threads read it concurrently.
 * On a 32-bit-native target, the store executes as two 32-bit pieces —
 * so a concurrent reader can observe the "chimera" values
 * 0xFFFFFFFF00000000 or 0x00000000FFFFFFFF that are half old and half
 * new. eclsim's interleaved engine models exactly such a target, so the
 * chimeras genuinely appear; converting the accesses to atomics makes
 * them vanish.
 *
 * Run:  ./build/examples/word_tearing
 */
#include <cinttypes>
#include <cstdio>
#include <map>

#include "simt/ecl_atomics.hpp"
#include "simt/engine.hpp"

namespace {

using namespace eclsim;
using simt::AccessMode;

/** Run the Fig. 1 experiment with the given access mode; returns the
 *  distinct values the reader threads observed. */
std::map<u64, u32>
observeValues(AccessMode mode, u32 trials)
{
    std::map<u64, u32> observed;
    for (u32 trial = 0; trial < trials; ++trial) {
        simt::DeviceMemory memory;
        simt::EngineOptions options;
        options.mode = simt::ExecMode::kInterleaved;
        options.seed = trial + 1;
        simt::Engine engine(simt::titanV(), memory, options);

        auto val = memory.alloc<u64>(1, "val");
        auto seen = memory.alloc<u64>(64, "seen");
        memory.write(val, ~u64{0});  // long val = -1;

        simt::LaunchConfig cfg;
        cfg.grid = 1;
        cfg.block_x = 64;
        engine.launch("fig1", cfg, [&](simt::ThreadCtx& t) -> simt::Task {
            const u32 i = t.threadInBlock();
            if (i == 0) {
                // Thread T1: val = 0;
                co_await t.store(val, 0, u64{0}, mode);
            } else {
                // Threads T2: poll val a few times (like Fig. 1's T4)
                // and record the last value read. Early readers see -1,
                // late readers see 0 — and unlucky ones see a chimera.
                u64 v = 0;
                for (u32 poll = 0; poll <= i % 8; ++poll)
                    v = co_await t.load(val, 0, mode);
                co_await t.store(seen, i, v);
            }
        });

        for (u32 i = 1; i < 64; ++i)
            ++observed[memory.read(seen, i)];
    }
    return observed;
}

void
report(const char* title, const std::map<u64, u32>& observed)
{
    std::printf("%s\n", title);
    for (const auto& [value, count] : observed) {
        const bool chimera = value != 0 && value != ~u64{0};
        std::printf("  0x%016" PRIx64 "  seen %5u times%s\n", value, count,
                    chimera ? "   <-- CHIMERA (torn value!)" : "");
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("Fig. 1 of the paper: thread T1 stores 0 over the "
                "initial -1 of a shared\n64-bit variable while 63 other "
                "threads read it, on a 32-bit-native target.\n\n");

    report("plain (racy) accesses:",
           observeValues(AccessMode::kPlain, 200));
    report("volatile accesses (still racy -- volatile does not help):",
           observeValues(AccessMode::kVolatile, 200));
    report("relaxed atomic accesses (race-free):",
           observeValues(AccessMode::kAtomic, 200));

    std::printf("Only the atomic version is guaranteed to print -1 or 0 "
                "on every platform.\n");
    return 0;
}
