/**
 * @file
 * Quickstart: the 60-second tour of the eclsim public API.
 *
 *  1. generate (or load) a graph,
 *  2. create a simulated GPU engine,
 *  3. run one of the ECL graph analytics codes in both variants,
 *  4. compare runtimes and validate the result.
 *
 * Build & run:  ./build/examples/quickstart [--vertices=N]
 */
#include <iostream>

#include "algos/cc.hpp"
#include "core/flags.hpp"
#include "graph/generators.hpp"
#include "refalgos/refalgos.hpp"
#include "simt/engine.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto n =
        static_cast<VertexId>(flags.getInt("vertices", 100000));

    // 1. A scale-free graph, like the paper's social-network inputs.
    std::cout << "generating a preferential-attachment graph with " << n
              << " vertices...\n";
    const auto graph = graph::makePrefAttach(n, 8, /*seed=*/1);
    std::cout << "  " << graph.numArcs() << " arcs\n\n";

    // 2+3. Run ECL-CC on a simulated Titan V, baseline vs race-free.
    double ms[2];
    for (auto variant :
         {algos::Variant::kBaseline, algos::Variant::kRaceFree}) {
        simt::DeviceMemory memory;   // the simulated device memory
        simt::Engine engine(simt::titanV(), memory);

        const auto result = algos::runCc(engine, graph, variant);
        ms[variant == algos::Variant::kRaceFree] = result.stats.ms;

        // 4. Validate against a sequential oracle.
        const bool ok = refalgos::samePartition(
            result.labels, refalgos::connectedComponents(graph));
        std::cout << algos::variantName(variant) << " CC: "
                  << refalgos::countDistinct(result.labels)
                  << " components in " << result.stats.ms
                  << " simulated ms over " << result.stats.launches
                  << " kernel launches ("
                  << (ok ? "validated" : "WRONG") << ")\n";
    }

    std::cout << "\nspeedup of the race-free code: " << ms[0] / ms[1]
              << "x  (CC loses performance when its races are removed — "
                 "see Tables IV-VII of the paper)\n";
    return 0;
}
