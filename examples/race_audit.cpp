/**
 * @file
 * Race audit: the paper's Section IV workflow as a runnable tool.
 *
 * Runs every algorithm of the suite — baseline and race-free — under the
 * dynamic race detector (eclsim's stand-in for Compute Sanitizer and
 * iGuard) on a small input and prints a sanitizer-style report. The
 * expected output matches the paper's findings: every baseline except
 * APSP races on its shared arrays; every race-free variant is clean.
 *
 * Run:  ./build/examples/race_audit [--vertices=N]
 */
#include <iostream>

#include "algos/apsp.hpp"
#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/scc.hpp"
#include "core/flags.hpp"
#include "graph/generators.hpp"
#include "simt/engine.hpp"

namespace {

using namespace eclsim;

/** Run one code under the race detector and print its report. */
template <typename Run>
void
audit(const std::string& name, Run&& run)
{
    simt::DeviceMemory memory;
    simt::EngineOptions options;
    options.mode = simt::ExecMode::kInterleaved;  // races need interleaving
    options.detect_races = true;
    simt::Engine engine(simt::titanV(), memory, options);

    run(engine);

    const auto* detector = engine.raceDetector();
    std::cout << "==== " << name << " ====\n";
    if (detector->totalRaces() == 0)
        std::cout << "  no data races detected\n";
    else
        for (const auto& report : detector->reports())
            std::cout << "  " << simt::raceKindName(report.kind)
                      << " race on '" << report.allocation << "' ("
                      << report.count << " conflicting pairs, e.g. "
                      << "threads " << report.first_thread_a << " and "
                      << report.first_thread_b << ")\n";
    std::cout << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    Flags flags(argc, argv);
    const auto n = static_cast<VertexId>(flags.getInt("vertices", 2000));

    const auto undirected = graph::makeRmat(11, 4 * n, {}, 3);
    const auto weighted = graph::withSyntheticWeights(undirected, 50, 4);
    const auto directed = graph::makeDirectedPowerLaw(10, 3 * n, 0.3, 5);
    const auto apsp_in = graph::withSyntheticWeights(
        graph::makeRandomUniform(48, 200, 6), 20, 7);

    std::cout << "Auditing the baseline (racy) codes — the paper's "
                 "Section IV-A findings:\n\n";
    for (auto variant :
         {algos::Variant::kBaseline, algos::Variant::kRaceFree}) {
        const std::string tag =
            std::string(" [") + algos::variantName(variant) + "]";
        audit("CC" + tag, [&](simt::Engine& e) {
            algos::runCc(e, undirected, variant);
        });
        audit("GC" + tag, [&](simt::Engine& e) {
            algos::runGc(e, undirected, variant);
        });
        audit("MIS" + tag, [&](simt::Engine& e) {
            algos::runMis(e, undirected, variant);
        });
        audit("MST" + tag, [&](simt::Engine& e) {
            algos::runMst(e, weighted, variant);
        });
        audit("SCC" + tag, [&](simt::Engine& e) {
            algos::runScc(e, directed, variant);
        });
        if (variant == algos::Variant::kBaseline) {
            // APSP has no races and no converted variant (Section IV-A).
            audit("APSP [regular code, no races by construction]",
                  [&](simt::Engine& e) { algos::runApsp(e, apsp_in); });
            std::cout << "Now the converted race-free codes — expected "
                         "clean:\n\n";
        }
    }
    return 0;
}
