/**
 * @file
 * GPU sweep: run one algorithm on one input across all four simulated
 * GPU generations and show how the race-free conversion penalty (or
 * speedup) shifts with the architecture — the per-algorithm view behind
 * the paper's Fig. 6 trend that newer GPUs are hurt more.
 *
 * Run:  ./build/examples/gpu_sweep [--algo=cc|gc|mis|mst|scc]
 *                                  [--input=<catalog name>]
 */
#include <iostream>

#include "core/flags.hpp"
#include "core/table.hpp"
#include "graph/catalog.hpp"
#include "harness/experiment.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);

    const std::string algo_name = flags.getString("algo", "cc");
    harness::Algo algo = harness::Algo::kCc;
    if (algo_name == "gc")
        algo = harness::Algo::kGc;
    else if (algo_name == "mis")
        algo = harness::Algo::kMis;
    else if (algo_name == "mst")
        algo = harness::Algo::kMst;
    else if (algo_name == "scc")
        algo = harness::Algo::kScc;
    else if (algo_name != "cc")
        fatal("unknown --algo '{}' (want cc|gc|mis|mst|scc)", algo_name);

    const std::string default_input =
        algo == harness::Algo::kScc ? "wikipedia" : "soc-LiveJournal1";
    const std::string input = flags.getString("input", default_input);

    harness::ExperimentConfig config;
    config.reps = static_cast<u32>(flags.getInt("reps", 3));
    config.graph_divisor =
        static_cast<u32>(flags.getInt("divisor", 512));
    config.verify = true;  // examples always validate

    auto graph = graph::makeInput(input, config.graph_divisor);
    if (algo == harness::Algo::kMst)
        graph = graph::withSyntheticWeights(graph, 1000, 0xec1);

    std::cout << "running " << harness::algoName(algo) << " on '" << input
              << "' (scaled stand-in: " << graph.numVertices()
              << " vertices, " << graph.numArcs()
              << " arcs), both variants, " << config.reps
              << " reps each, results validated...\n\n";

    TextTable table({"GPU", "baseline ms", "race-free ms", "speedup"});
    for (const auto& gpu : simt::evaluationGpus()) {
        const auto m =
            harness::measure(gpu, graph, input, algo, config);
        table.addRow({gpu.name, fmtFixed(m.baseline_ms, 3),
                      fmtFixed(m.racefree_ms, 3),
                      fmtFixed(m.speedup(), 2)});
    }
    std::cout << table.toText();
    std::cout << "\n(speedup > 1: the race-free code is faster)\n";
    return 0;
}
