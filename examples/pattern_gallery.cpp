/**
 * @file
 * Pattern gallery: walk the labeled race-pattern microsuite (the
 * Indigo3/DataRaceBench-style library in src/patterns) and print, for
 * each pattern, the detector's verdict against the ground truth plus
 * whether the computed result was correct under a handful of simulated
 * interleavings. Racy patterns demonstrate that "benign" races are not
 * benign: several of them produce wrong answers under some schedules.
 *
 * Run:  ./build/examples/pattern_gallery [--seeds=N]
 */
#include <iostream>

#include "core/flags.hpp"
#include "core/table.hpp"
#include "patterns/patterns.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const auto seeds = static_cast<u64>(flags.getInt("seeds", 16));

    TextTable table({"Pattern", "labeled", "detector", "wrong results",
                     "description"});
    table.setAlign(4, TextTable::Align::kLeft);

    bool all_verdicts_match = true;
    for (const auto& pattern : patterns::patternSuite()) {
        bool flagged = false;
        u64 wrong = 0;
        for (u64 seed = 1; seed <= seeds; ++seed) {
            simt::DeviceMemory memory;
            simt::EngineOptions options;
            options.mode = simt::ExecMode::kInterleaved;
            options.detect_races = true;
            options.seed = seed;
            simt::Engine engine(simt::titanV(), memory, options);
            if (!pattern.run(engine))
                ++wrong;
            flagged |= engine.raceDetector()->totalRaces() > 0;
        }
        if (flagged != pattern.racy)
            all_verdicts_match = false;
        table.addRow({pattern.name, pattern.racy ? "racy" : "clean",
                      flagged ? "races" : "clean",
                      std::to_string(wrong) + "/" + std::to_string(seeds),
                      pattern.description});
    }

    std::cout << "Labeled race-pattern microsuite under the dynamic "
                 "detector (" << seeds << " interleavings each):\n\n"
              << table.toText() << "\n"
              << (all_verdicts_match
                      ? "detector verdicts match all labels (perfect "
                        "precision and recall on this suite)\n"
                      : "DETECTOR MISMATCH — see the table above\n");
    return all_verdicts_match ? 0 : 1;
}
