/**
 * @file
 * Profiling walkthrough: run both CC variants with an eclsim::prof
 * session attached, export one Chrome-trace JSON per variant, and print
 * a side-by-side memory-path breakdown.
 *
 * This is the profiling experiment behind Section VI-A of the paper: the
 * baseline CC keeps its pointer-jumping reads in the L1, while the
 * race-free conversion routes every parent read/write through the L2 as
 * an atomic, which is why CC loses the most performance of all five
 * codes when its races are removed.
 *
 * Build & run:  ./build/examples/profile_run [--input=amazon0601]
 *                   [--divisor=N] [--gpu="Titan V"]
 * Then open cc_baseline.trace.json / cc_racefree.trace.json in
 * chrome://tracing or https://ui.perfetto.dev.
 */
#include <iostream>

#include "algos/cc.hpp"
#include "core/flags.hpp"
#include "core/table.hpp"
#include "graph/catalog.hpp"
#include "prof/trace.hpp"
#include "prof/trace_export.hpp"
#include "simt/engine.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);
    const std::string input = flags.getString("input", "amazon0601");
    const auto divisor = static_cast<u32>(
        flags.getInt("divisor", graph::kDefaultScaleDivisor));
    const auto& gpu = simt::findGpu(flags.getString("gpu", "Titan V"));

    std::cout << "profiling CC on '" << input << "' (divisor " << divisor
              << ") on a simulated " << gpu.name << "\n\n";
    const auto graph = graph::makeInput(input, divisor);

    // One trace session per variant so each exports as its own file and
    // the counters can be compared side by side.
    prof::TraceSession sessions[2];
    const char* trace_files[2] = {"cc_baseline.trace.json",
                                  "cc_racefree.trace.json"};
    u64 cycles[2];
    double ms[2];
    for (auto variant :
         {algos::Variant::kBaseline, algos::Variant::kRaceFree}) {
        const int i = variant == algos::Variant::kRaceFree;
        simt::DeviceMemory memory;
        simt::EngineOptions options;
        options.trace = &sessions[i];
        simt::Engine engine(gpu, memory, options);

        const auto result = algos::runCc(engine, graph, variant);
        ms[i] = result.stats.ms;
        cycles[i] = result.stats.cycles;

        prof::writeChromeTrace(sessions[i], trace_files[i]);
        std::cout << algos::variantName(variant) << " CC: " << ms[i]
                  << " simulated ms over " << result.stats.launches
                  << " launches  ->  " << trace_files[i] << "\n";
    }

    // Side-by-side memory-path breakdown from the profiling counters.
    const std::vector<std::string> keys = {
        "sim/mem/load",          "sim/mem/store",
        "sim/mem/l1_hit",        "sim/mem/l1_miss",
        "sim/mem/l2_hit",        "sim/mem/l2_miss",
        "sim/mem/dram_access",   "sim/mem/atomic_access",
        "sim/mem/atomic_rmw",    "sim/mem/volatile_access",
        "sim/mem/stale_read",    "sim/race/checks",
        "sim/race/conflicts",
    };
    TextTable table({"counter", "baseline", "race-free"});
    for (const std::string& key : keys) {
        table.addRow({key,
                      fmtGrouped(sessions[0].counters().valueByName(key)),
                      fmtGrouped(sessions[1].counters().valueByName(key))});
    }
    std::cout << "\n" << table.toText();

    std::cout << "\nrace-free/baseline runtime ratio: "
              << fmtFixed(ms[1] / ms[0], 2)
              << "x  (baseline total cycles " << cycles[0]
              << ", race-free " << cycles[1] << ")\n"
              << "Expectation: the race-free column trades L1 hits for "
                 "L2 atomic traffic.\n";
    return 0;
}
