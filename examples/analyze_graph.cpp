/**
 * @file
 * Graph toolbox example: generate one of the paper's catalog inputs (or
 * read a previously saved one), persist it in the eclsim binary format,
 * print its Table II/III-style statistics, and run the full undirected
 * analytics suite on it with validation.
 *
 * Run:  ./build/examples/analyze_graph --input=as-skitter
 *       ./build/examples/analyze_graph --file=/tmp/my.eclsim
 */
#include <iostream>

#include "algos/cc.hpp"
#include "algos/gc.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "core/flags.hpp"
#include "core/table.hpp"
#include "graph/catalog.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "refalgos/refalgos.hpp"
#include "simt/engine.hpp"

int
main(int argc, char** argv)
{
    using namespace eclsim;
    Flags flags(argc, argv);

    graph::CsrGraph graph;
    std::string name;
    if (flags.has("file")) {
        name = flags.getString("file", "");
        graph = graph::readGraph(name);
        std::cout << "loaded '" << name << "'\n";
    } else {
        name = flags.getString("input", "as-skitter");
        const auto divisor =
            static_cast<u32>(flags.getInt("divisor", 512));
        graph = graph::makeInput(name, divisor);
        const std::string path = "/tmp/" + name + ".eclsim";
        graph::writeGraph(graph, path);
        std::cout << "generated catalog stand-in '" << name
                  << "' (divisor " << divisor << "), saved to " << path
                  << "\n";
        // Round-trip check of the binary format.
        if (!(graph::readGraph(path) == graph))
            fatal("graph IO round trip failed");
    }

    const auto props = graph::computeProperties(graph);
    TextTable info({"Vertices", "Arcs", "d-avg", "d-max", "d-min",
                    "isolated"});
    info.addRow({fmtGrouped(props.num_vertices), fmtGrouped(props.num_arcs),
                 fmtFixed(props.avg_degree, 2), fmtGrouped(props.max_degree),
                 fmtGrouped(props.min_degree),
                 fmtGrouped(props.isolated_vertices)});
    std::cout << "\n" << info.toText() << "\n";

    if (graph.directed()) {
        std::cout << "directed graph: run the SCC suite via gpu_sweep "
                     "--algo=scc instead\n";
        return 0;
    }

    simt::DeviceMemory memory;
    simt::Engine engine(simt::rtx4090(), memory);
    const auto weighted = graph::withSyntheticWeights(graph, 1000, 0xec1);

    const auto cc = algos::runCc(engine, graph, algos::Variant::kRaceFree);
    std::cout << "CC : " << refalgos::countDistinct(cc.labels)
              << " components ("
              << (refalgos::samePartition(
                      cc.labels, refalgos::connectedComponents(graph))
                      ? "validated"
                      : "WRONG")
              << ", " << fmtFixed(cc.stats.ms, 3) << " ms)\n";

    const auto gc = algos::runGc(engine, graph, algos::Variant::kRaceFree);
    std::cout << "GC : " << gc.num_colors << " colors ("
              << (refalgos::isValidColoring(graph, gc.colors) ? "validated"
                                                              : "WRONG")
              << ", " << fmtFixed(gc.stats.ms, 3) << " ms)\n";

    const auto mis =
        algos::runMis(engine, graph, algos::Variant::kRaceFree);
    std::cout << "MIS: " << mis.set_size << " vertices in the set ("
              << (refalgos::isMaximalIndependentSet(graph, mis.in_set)
                      ? "validated"
                      : "WRONG")
              << ", " << fmtFixed(mis.stats.ms, 3) << " ms)\n";

    const auto mst =
        algos::runMst(engine, weighted, algos::Variant::kRaceFree);
    std::cout << "MST: total weight " << mst.total_weight << " over "
              << mst.num_edges << " edges ("
              << (mst.total_weight ==
                          refalgos::minimumSpanningForestWeight(weighted)
                      ? "validated"
                      : "WRONG")
              << ", " << fmtFixed(mst.stats.ms, 3) << " ms)\n";
    return 0;
}
