#!/usr/bin/env bash
# Smoke test of the eclsim::chaos benignity campaigns:
#
#  1. the full benign-policy campaign must report zero oracle violations
#     on every algorithm (the paper's benign-race claim, measured),
#  2. the same seed must reproduce a byte-identical campaign CSV at any
#     --jobs value (the PR-2 determinism contract extended to chaos),
#  3. the harmful drop-atomic policy must be caught by the MST oracle
#     and fail the run (the oracles have teeth),
#  4. the same policy must push PageRank's racy accumulation past its
#     epsilon-L1 bound (the Graphalytics epsilon gate has teeth too).
#
# Usage: ./scripts/chaos_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
CAMPAIGN="$BUILD/bench/chaos_campaign"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== benign campaign (--policy=all) =="
"$CAMPAIGN" --policy=all --divisor=8192 --campaign-seeds=1 --seed=7 \
    --jobs=1 --quiet --csv="$OUT/serial.csv" > "$OUT/serial.txt"
grep -q "oracle violations: 0" "$OUT/serial.txt" || {
    echo "FAIL: benign campaign reported violations"
    tail -n 5 "$OUT/serial.txt"
    exit 1
}

echo "== determinism across --jobs =="
"$CAMPAIGN" --policy=all --divisor=8192 --campaign-seeds=1 --seed=7 \
    --jobs=4 --quiet --csv="$OUT/parallel.csv" > /dev/null
cmp "$OUT/serial.csv" "$OUT/parallel.csv" || {
    echo "FAIL: campaign CSV differs between --jobs=1 and --jobs=4"
    exit 1
}

echo "== harmful drop-atomic must be caught =="
if "$CAMPAIGN" --policy=drop-atomic --algos=mst --inputs=internet \
    --divisor=8192 --campaign-seeds=2 --intensity=1.0 --seed=7 \
    --jobs=1 --quiet > "$OUT/harmful.txt"; then
    echo "FAIL: drop-atomic campaign exited 0 (oracle missed it)"
    exit 1
fi
grep -q "Kruskal" "$OUT/harmful.txt" || {
    echo "FAIL: no MST weight mismatch in the harmful report"
    exit 1
}

echo "== drop-atomic must break PageRank's epsilon bound =="
if "$CAMPAIGN" --policy=drop-atomic --algos=pr --divisor=8192 \
    --campaign-seeds=2 --intensity=1.0 --seed=7 \
    --jobs=1 --quiet > "$OUT/pr.txt"; then
    echo "FAIL: drop-atomic PR campaign exited 0 (epsilon gate missed it)"
    exit 1
fi
grep -q "bound" "$OUT/pr.txt" || {
    echo "FAIL: no L1-bound violation in the PR report"
    exit 1
}

echo "chaos smoke test passed"
