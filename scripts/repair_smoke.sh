#!/usr/bin/env bash
# Smoke test of the eclsim::repair auto-repair advisor:
#
#  1. `repair_advisor --algo=cc` must exit CLEAN: every racing site of
#     the CC baseline gets a proposed access-mode conversion, each
#     site's closure re-run is race-silent, and the whole-algorithm
#     repair validates against the oracle,
#  2. same for one Graphalytics algorithm (PR — the paper's one
#     harmful-tolerated race, repaired to an atomic accumulation),
#  3. the per-site CSV and JSON reports must be byte-identical at
#     --jobs=1 and --jobs=8 (the PR-2 determinism contract extended to
#     the repair pipeline),
#  4. `racecheck --list-sites` must emit the stable sorted site
#     registry with the expected header.
#
# Usage: ./scripts/repair_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
ADVISOR="$BUILD/bench/repair_advisor"
RACECHECK="$BUILD/bench/racecheck"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

run_advisor() {
    local algo="$1" jobs="$2" tag="$3"
    "$ADVISOR" --algo="$algo" --jobs="$jobs" --reps=2 \
        --exposure-seeds=1 --quiet \
        --csv="$OUT/$tag.csv" --json="$OUT/$tag.json" \
        > "$OUT/$tag.txt" || {
        echo "FAIL: repair advisor not clean for $algo (jobs=$jobs)"
        tail -n 20 "$OUT/$tag.txt"
        exit 1
    }
    grep -q "repair advisor: CLEAN" "$OUT/$tag.txt" || {
        echo "FAIL: no CLEAN verdict for $algo (jobs=$jobs)"
        exit 1
    }
}

for algo in cc pr; do
    echo "== repair advisor: $algo =="
    run_advisor "$algo" 1 "$algo.serial"
    run_advisor "$algo" 8 "$algo.parallel"

    echo "== determinism across --jobs: $algo =="
    cmp "$OUT/$algo.serial.csv" "$OUT/$algo.parallel.csv" || {
        echo "FAIL: $algo repair CSV differs between --jobs=1 and 8"
        exit 1
    }
    cmp "$OUT/$algo.serial.json" "$OUT/$algo.parallel.json" || {
        echo "FAIL: $algo repair JSON differs between --jobs=1 and 8"
        exit 1
    }
done

echo "== site registry export =="
"$RACECHECK" --list-sites --quiet --csv="$OUT/sites.csv" > /dev/null
head -n 1 "$OUT/sites.csv" | grep -q "Id,File,Line,Label,Expectation" || {
    echo "FAIL: unexpected --list-sites CSV header"
    head -n 1 "$OUT/sites.csv"
    exit 1
}
[ "$(wc -l < "$OUT/sites.csv")" -ge 41 ] || {
    echo "FAIL: site registry export suspiciously small"
    exit 1
}

echo "repair smoke test passed"
