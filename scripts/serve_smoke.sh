#!/usr/bin/env bash
# Serve smoke test, two stages:
#
#   1. serve_loadgen --check: replay a Zipf-skewed request mix over
#      concurrent TCP connections against an in-process daemon and
#      gate on (a) zero protocol errors, (b) every response byte-
#      identical to a fresh single-threaded daemon, (c) >= 30%
#      cache-hit rate. Metrics land in BENCH_SERVE.json.
#
#   2. eclsim_served end-to-end: start the daemon, drive it with a
#      python3 line-JSON client (repeat requests must hit the cache
#      with byte-identical results; malformed lines must get error
#      responses, not kill the connection), then SIGINT it and assert
#      a clean drain: exit status 0 and flushed counters that record
#      the cache hit.
#
# Usage: ./scripts/serve_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JSON="${SERVE_JSON:-BENCH_SERVE.json}"
COUNTERS="$(mktemp /tmp/serve_counters.XXXXXX.csv)"
DAEMON_LOG="$(mktemp /tmp/serve_daemon.XXXXXX.log)"
trap 'rm -f "$COUNTERS" "$DAEMON_LOG"' EXIT

echo "== serve_loadgen (determinism + hit-rate gate) =="
"$BUILD/bench/serve_loadgen" --requests=500 --connections=8 \
    --distinct=32 --divisor=2048 --reps=1 --json="$JSON" --check

echo "== eclsim_served end-to-end =="
"$BUILD/bench/eclsim_served" --port=0 --jobs=2 \
    --counters="$COUNTERS" --quiet >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the "listening on 127.0.0.1:<port>" banner.
PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$DAEMON_LOG" | head -n1)"
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "daemon died at startup:"; cat "$DAEMON_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$PORT" ] || { echo "daemon never printed its port"; exit 1; }
echo "daemon up on port $PORT (pid $DAEMON_PID)"

python3 - "$PORT" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port), timeout=60)
reader = sock.makefile("r")

def rpc(line):
    sock.sendall((line + "\n").encode())
    return reader.readline().strip()

request = ('{"graph":"rmat16.sym","algo":"cc","reps":1,'
           '"divisor":2048,"seed":7}')

pong = json.loads(rpc('{"op":"ping"}'))
assert pong.get("result", {}).get("pong") is True, pong

first = rpc(request)
second = rpc(request)
fj, sj = json.loads(first), json.loads(second)
assert fj["status"] == "ok" and sj["status"] == "ok", (first, second)
assert fj["cache"] == "miss" and sj["cache"] == "hit", (first, second)
assert fj["result"] == sj["result"], "cache hit changed the result"
frag = lambda line: line[line.find('"result":'):line.rfind("}")]
assert frag(first) == frag(second), "cache hit changed the result bytes"

bad = json.loads(rpc("this is not json"))
assert bad["status"] == "error" and bad["error"], bad
# The connection survived the malformed line.
again = json.loads(rpc(request))
assert again["status"] == "ok" and again["cache"] == "hit", again

stats = json.loads(rpc('{"op":"stats"}'))["result"]
assert stats["executed"] == 1 and stats["cache_hits"] == 2, stats
print("client checks passed:", stats)
sock.close()
EOF

kill -INT "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
if [ "$DAEMON_STATUS" -ne 0 ]; then
    echo "daemon exited with status $DAEMON_STATUS:"; cat "$DAEMON_LOG"
    exit 1
fi

grep -q "^serve/cache_hit,2$" "$COUNTERS" || {
    echo "flushed counters missing serve/cache_hit=2:"; cat "$COUNTERS"
    exit 1; }
grep -q "^serve/executed,1$" "$COUNTERS" || {
    echo "flushed counters missing serve/executed=1:"; cat "$COUNTERS"
    exit 1; }

echo "serve smoke passed (daemon drained cleanly, counters flushed)"
