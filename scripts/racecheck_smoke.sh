#!/usr/bin/env bash
# Smoke test of the eclsim::racecheck race-freedom gate:
#
#  1. the full sweep must pass: every racefree variant (and APSP) clean,
#     every baseline racy on at least one of the arrays the paper names,
#     every reported race classified benign — the CI gate of the paper's
#     Section IV validation protocol,
#  2. every baseline must individually report a nonempty classified site
#     table (the detector keeps reproducing the paper's findings),
#  3. the same seed must reproduce a byte-identical site-table CSV at
#     any --jobs value (the PR-2 determinism contract),
#  4. a racefree-only sweep must also pass standalone (zero races).
#
# Usage: ./scripts/racecheck_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
GATE="$BUILD/bench/racecheck"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== full race-freedom gate =="
"$GATE" --seed=7 --jobs=1 --quiet --csv="$OUT/serial.csv" \
    > "$OUT/serial.txt" || {
    echo "FAIL: the race-freedom gate failed"
    tail -n 20 "$OUT/serial.txt"
    exit 1
}
grep -q "race-freedom gate: PASS" "$OUT/serial.txt" || {
    echo "FAIL: no PASS verdict in the gate output"
    exit 1
}

echo "== every baseline reports classified races =="
for algo in cc gc mis mst scc pr bfs wcc; do
    grep -qi "^$algo/baseline" "$OUT/serial.csv" || {
        echo "FAIL: no classified race sites for the $algo baseline"
        exit 1
    }
done
# PR's float accumulation is the one harmful-tolerated race: it must be
# classified as such (not benign, not unknown) and the gate must still
# pass because its epsilon-L1 oracle held above.
grep -qi "^pr/baseline.*harmful-tolerated" "$OUT/serial.csv" || {
    echo "FAIL: PR baseline lost its harmful-tolerated classification"
    exit 1
}
if grep -q "UNKNOWN/HARMFUL" "$OUT/serial.csv"; then
    echo "FAIL: an unexplained race slipped through the classifier"
    grep "UNKNOWN/HARMFUL" "$OUT/serial.csv"
    exit 1
fi

echo "== determinism across --jobs =="
"$GATE" --seed=7 --jobs=4 --quiet --csv="$OUT/parallel.csv" > /dev/null
cmp "$OUT/serial.csv" "$OUT/parallel.csv" || {
    echo "FAIL: site table differs between --jobs=1 and --jobs=4"
    exit 1
}

echo "== racefree-only sweep is clean =="
"$GATE" --variants=racefree --seed=7 --jobs=1 --quiet \
    --csv="$OUT/racefree.csv" > "$OUT/racefree.txt" || {
    echo "FAIL: the racefree-only sweep failed"
    tail -n 20 "$OUT/racefree.txt"
    exit 1
}
# The CSV must contain the header line only: zero classified sites.
[ "$(wc -l < "$OUT/racefree.csv")" -le 1 ] || {
    echo "FAIL: racefree variants reported race sites"
    cat "$OUT/racefree.csv"
    exit 1
}

echo "racecheck smoke test passed"
