#!/usr/bin/env bash
# Smoke test of the eclsim::staticrace may-race analyzer:
#
#  1. `scripts/site_lint.py` must pass: every memory operation in
#     src/algos carries an ECL_SITE attribution and no two labels
#     collide on one (file, line) — unattributed accesses would make
#     the analyzer silently blind,
#  2. the soundness gate must hold on a representative slice (CC, MIS,
#     PR x baseline+racefree): every dynamically witnessed race pair
#     statically covered, race-free variants free of non-atomic
#     may-pairs,
#  3. the analysis JSON must be byte-identical at --jobs=1 and
#     --jobs=8 (the PR-2 determinism contract extended to the static
#     analyzer).
#
# Usage: ./scripts/staticrace_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
STATICRACE="$BUILD/bench/staticrace"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== site attribution lint =="
python3 scripts/site_lint.py

echo "== soundness gate: cc,mis,pr =="
"$STATICRACE" --algos=cc,mis,pr --no-apsp --gate --quiet \
    --json="$OUT/gate.json" > "$OUT/gate.txt" || {
    echo "FAIL: staticrace soundness gate"
    tail -n 30 "$OUT/gate.txt"
    exit 1
}
grep -q "staticrace soundness gate: PASS" "$OUT/gate.txt" || {
    echo "FAIL: no PASS verdict in gate output"
    tail -n 10 "$OUT/gate.txt"
    exit 1
}

echo "== determinism across --jobs =="
"$STATICRACE" --algos=cc,mis,pr --no-apsp --quiet --jobs=1 \
    --json="$OUT/serial.json" > /dev/null
"$STATICRACE" --algos=cc,mis,pr --no-apsp --quiet --jobs=8 \
    --json="$OUT/parallel.json" > /dev/null
cmp "$OUT/serial.json" "$OUT/parallel.json" || {
    echo "FAIL: staticrace JSON differs between --jobs=1 and 8"
    exit 1
}

echo "staticrace smoke test passed"
