#!/usr/bin/env bash
# Reproduction of the paper artifact's all_tests.sh (Appendix E.2): build
# everything, run the test suite, then regenerate every table and figure.
#
# Usage: ./scripts/all_tests.sh [reps] [divisor]
#   reps     repetitions per configuration (artifact default: 9; ours: 3)
#   divisor  input scale divisor (512 keeps the sweep to a few minutes)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
DIVISOR="${2:-512}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j "$(nproc)"
./scripts/chaos_smoke.sh build
./scripts/racecheck_smoke.sh build
./scripts/repair_smoke.sh build
./scripts/staticrace_smoke.sh build
./scripts/simbench_smoke.sh build
./scripts/serve_smoke.sh build

mkdir -p results output
for bench in build/bench/table* build/bench/fig6_geomean \
             build/bench/profile_l1_cc build/bench/ablation_visibility \
             build/bench/ablation_memory_order; do
    echo "==== $(basename "$bench") ===="
    "$bench" --reps="$REPS" --divisor="$DIVISOR" --quiet
done
build/bench/ablation_quality --reps="$REPS" --divisor="$DIVISOR"
build/bench/ablation_trim --reps="$REPS" --divisor="$DIVISOR"
build/bench/ablation_load_balance --reps="$REPS" --divisor="$DIVISOR"
build/bench/scorecard --reps="$REPS" --divisor="$DIVISOR" --quiet
build/bench/artifact_pipeline --reps="$REPS" --divisor="$DIVISOR" --outdir=.
