#!/usr/bin/env bash
# Smoke test of the eclsim::prof trace pipeline: run the profiling
# example plus one --trace'd bench and check that every emitted
# Chrome-trace file is syntactically valid JSON with a traceEvents array.
#
# Usage: ./scripts/trace_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

check_trace() {
    python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
assert any(e.get("ph") == "B" for e in events), "no span begins"
assert any(e.get("ph") == "E" for e in events), "no span ends"
print(f"  ok: {sys.argv[1]} ({len(events)} events)")
EOF
}

echo "== profile_run example =="
(cd "$OUT" && "$OLDPWD/$BUILD/examples/profile_run" --divisor=1024)
check_trace "$OUT/cc_baseline.trace.json"
check_trace "$OUT/cc_racefree.trace.json"

echo "== table4_titanv --trace =="
"$BUILD/bench/table4_titanv" --reps=1 --divisor=1024 --quiet \
    --trace="$OUT/table4.trace.json" --counters="$OUT/table4.counters.csv"
check_trace "$OUT/table4.trace.json"
head -n 3 "$OUT/table4.counters.csv"

echo "trace smoke test passed"
