#!/usr/bin/env python3
"""Source lint for ECL_SITE attribution coverage in src/algos.

Every device memory operation in the algorithm kernels must name its
source site so race reports, repair proposals, and the static may-race
analyzer (src/staticrace) can attribute address streams:

  co_await t.at(ECL_SITE("compute parent[] jump-load")).load(...)
  co_await ecl::readFirst(t.at(ECL_SITE("...")), a.pair, v)

The lint statically rejects:

  1. bare ThreadCtx operations  -- `t.load(...)`, `t.store(...)`,
     `t.atomicAdd(...)`, ... not routed through `.at(ECL_SITE...)`;
  2. bare helper calls          -- `ecl::helper(t, ...)` where the
     ThreadCtx argument carries no `.at(ECL_SITE...)` attribution;
  3. label collisions           -- two ECL_SITE interns on the same
     (file, line) with different labels (the registry keys sites by
     (file, line, label); a collision makes reports ambiguous).

Exit status 0 when clean, 1 with a findings listing otherwise.
Usage: scripts/site_lint.py [--root DIR]
"""

import argparse
import pathlib
import re
import sys

# ThreadCtx operations that issue memory requests. `at`, `syncthreads`,
# `work`, `sharedArray` etc. are deliberately absent.
MEM_OPS = (
    "load",
    "store",
    "atomicAdd",
    "atomicMin",
    "atomicMax",
    "atomicAnd",
    "atomicOr",
    "atomicExch",
    "atomicCas",
)

SITE_MACRO = re.compile(r"ECL_SITE(?:_AS)?\s*\(")
STRING_LIT = re.compile(r'"((?:[^"\\]|\\.)*)"')


def strip_comments(text):
    """Replace comment bodies with spaces, preserving offsets/newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif text[i] == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def find_bare_ctx_ops(text, path, findings):
    """Rule 1: `t.load(` etc. — the attributed form is `.at(...).load(`,
    whose receiver token is `)`, so matching the ThreadCtx identifier
    directly before the op only hits unattributed calls."""
    op_alt = "|".join(MEM_OPS)
    pattern = re.compile(
        r"\b([A-Za-z_]\w*)\s*\.\s*(%s)\s*\(" % op_alt
    )
    for m in pattern.finditer(text):
        receiver = m.group(1)
        # Heuristic scope guard: ThreadCtx parameters in the kernels are
        # conventionally `t`; anything else (graph wrappers, vectors,
        # DeviceMemory) is not a device access point.
        if receiver != "t":
            continue
        findings.append(
            "%s:%d: unattributed ThreadCtx op `t.%s(...)` "
            "(route through t.at(ECL_SITE(...)))"
            % (path, line_of(text, m.start()), m.group(2))
        )


def find_bare_helper_calls(text, path, findings):
    """Rule 2: `ecl::helper(t, ...)` — the first argument must carry the
    site: `ecl::helper(t.at(ECL_SITE...), ...)`."""
    pattern = re.compile(r"\becl::(\w+)\s*\(\s*t\s*([,.])")
    for m in pattern.finditer(text):
        if m.group(2) == ".":
            tail = text[m.end() - 1 : m.end() + 24]
            if re.match(r"\.\s*at\s*\(\s*ECL_SITE", tail):
                continue
        findings.append(
            "%s:%d: unattributed helper call `ecl::%s(t, ...)` "
            "(pass t.at(ECL_SITE(...)) as the ThreadCtx argument)"
            % (path, line_of(text, m.start()), m.group(1))
        )


def find_label_collisions(text, path, findings):
    """Rule 3: one (file, line) — one label."""
    labels_by_line = {}
    for m in SITE_MACRO.finditer(text):
        lit = STRING_LIT.search(text, m.end())
        if lit is None:
            findings.append(
                "%s:%d: ECL_SITE without a string-literal label"
                % (path, line_of(text, m.start()))
            )
            continue
        line = line_of(text, m.start())
        label = lit.group(1)
        prior = labels_by_line.setdefault(line, label)
        if prior != label:
            findings.append(
                "%s:%d: two ECL_SITE labels on one line "
                "('%s' vs '%s'); the registry keys sites by "
                "(file, line, label)" % (path, line, prior, label)
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the script's parent repo)",
    )
    args = parser.parse_args()

    algo_dir = pathlib.Path(args.root) / "src" / "algos"
    sources = sorted(algo_dir.glob("*.cpp")) + sorted(
        algo_dir.glob("*.hpp")
    )
    if not sources:
        print("site_lint: no sources under %s" % algo_dir, file=sys.stderr)
        return 1

    findings = []
    for source in sources:
        text = strip_comments(source.read_text())
        rel = source.relative_to(args.root)
        find_bare_ctx_ops(text, rel, findings)
        find_bare_helper_calls(text, rel, findings)
        find_label_collisions(text, rel, findings)

    if findings:
        print("site_lint: %d unattributed access(es):" % len(findings))
        for f in findings:
            print("  " + f)
        return 1
    print("site_lint: OK (%d files clean)" % len(sources))
    return 0


if __name__ == "__main__":
    sys.exit(main())
