#!/usr/bin/env bash
# Perf smoke test: run bench/simbench --quick and diff the emitted
# BENCH_SIM.json against the committed baseline
# (bench/BENCH_SIM.baseline.json).
#
# Two kinds of check:
#   counts      simulated accesses / launches / threads per workload are
#               deterministic and must match the baseline EXACTLY — a
#               mismatch means the simulator's behavior changed, which
#               is a hard failure regardless of speed;
#   throughput  the higher-is-better "metrics" are wall-clock dependent
#               and are gated softly: warn past SIMBENCH_WARN_PCT (10%)
#               regression, fail past SIMBENCH_FAIL_PCT (25%).
#
# Usage: ./scripts/simbench_smoke.sh [build-dir]
# Env:   SIMBENCH_WARN_PCT, SIMBENCH_FAIL_PCT, SIMBENCH_BASELINE,
#        SIMBENCH_JSON (output path, default BENCH_SIM.json in $PWD)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="${SIMBENCH_BASELINE:-bench/BENCH_SIM.baseline.json}"
JSON="${SIMBENCH_JSON:-BENCH_SIM.json}"
WARN="${SIMBENCH_WARN_PCT:-10}"
FAIL="${SIMBENCH_FAIL_PCT:-25}"

echo "== simbench --quick =="
"$BUILD/bench/simbench" --quick --json="$JSON"

echo "== diff vs $BASELINE (warn >${WARN}%, fail >${FAIL}%) =="
python3 - "$BASELINE" "$JSON" "$WARN" "$FAIL" <<'EOF'
import json, sys

baseline_path, current_path, warn_pct, fail_pct = sys.argv[1:5]
warn_pct, fail_pct = float(warn_pct), float(fail_pct)
with open(baseline_path) as f:
    base = json.load(f)
with open(current_path) as f:
    cur = json.load(f)

failures = []

# Hard check: the simulated work is deterministic. Counts that drift
# mean the engine changed behavior, not just speed.
for name, b in base["workloads"].items():
    c = cur["workloads"].get(name)
    if c is None:
        failures.append(f"workload '{name}' missing from current run")
        continue
    for key in ("accesses", "launches", "threads"):
        if b[key] != c[key]:
            failures.append(
                f"{name}.{key}: baseline {b[key]} != current {c[key]} "
                "(simulated work must be deterministic)")

# Soft gate: wall-clock throughput, relative to the committed baseline.
worst = 0.0
for key, b in base["metrics"].items():
    c = cur["metrics"].get(key)
    if c is None:
        failures.append(f"metric '{key}' missing from current run")
        continue
    regression = 100.0 * (b - c) / b if b > 0 else 0.0
    worst = max(worst, regression)
    status = "ok"
    if regression > fail_pct:
        status = "FAIL"
        failures.append(
            f"{key}: {c:.3g} vs baseline {b:.3g} "
            f"({regression:.1f}% regression > {fail_pct}%)")
    elif regression > warn_pct:
        status = f"WARN (>{warn_pct}%)"
    print(f"  {key:32s} {c:12.4g}  base {b:12.4g}  "
          f"{-regression:+6.1f}%  {status}")

if failures:
    print("\nperf smoke FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"\nperf smoke passed (worst regression {worst:.1f}%)")
EOF
