#!/usr/bin/env bash
# Perf smoke test: run bench/simbench --quick twice and gate throughput
# against a reference recorded ON THIS BOX in the same invocation, so a
# machine slower than the one that recorded the committed baseline does
# not flake the gate.
#
# Three kinds of check:
#   counts      simulated accesses / launches / threads per workload are
#               deterministic and must match the COMMITTED baseline
#               (bench/BENCH_SIM.baseline.json) EXACTLY — both runs; a
#               mismatch means the simulator's behavior changed, which
#               is a hard failure regardless of speed;
#   throughput  the higher-is-better "metrics" of run 2 are gated softly
#               against run 1 (the on-box reference): warn past
#               SIMBENCH_WARN_PCT (10%) regression, fail past
#               SIMBENCH_FAIL_PCT (25%). This includes the warp-batched
#               workloads' <wl>_batch_accesses_per_sec metrics (schema
#               3), so a batched-route slowdown trips the same gate;
#   committed   throughput deltas vs the committed baseline are printed
#               for information only — they reflect the recording box's
#               speed, never this box's health, and never fail.
#
# Usage: ./scripts/simbench_smoke.sh [build-dir]
# Env:   SIMBENCH_WARN_PCT, SIMBENCH_FAIL_PCT, SIMBENCH_BASELINE,
#        SIMBENCH_JSON (run-2 output, default BENCH_SIM.json in $PWD),
#        SIMBENCH_REF_JSON (run-1 output, default BENCH_SIM.ref.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="${SIMBENCH_BASELINE:-bench/BENCH_SIM.baseline.json}"
JSON="${SIMBENCH_JSON:-BENCH_SIM.json}"
REF="${SIMBENCH_REF_JSON:-BENCH_SIM.ref.json}"
WARN="${SIMBENCH_WARN_PCT:-10}"
FAIL="${SIMBENCH_FAIL_PCT:-25}"

echo "== simbench --quick (run 1: on-box reference) =="
"$BUILD/bench/simbench" --quick --json="$REF"

echo "== simbench --quick (run 2: gated) =="
"$BUILD/bench/simbench" --quick --json="$JSON"

echo "== counts vs $BASELINE (hard), throughput vs on-box reference" \
     "(warn >${WARN}%, fail >${FAIL}%) =="
python3 - "$BASELINE" "$REF" "$JSON" "$WARN" "$FAIL" <<'EOF'
import json, sys

baseline_path, ref_path, current_path, warn_pct, fail_pct = sys.argv[1:6]
warn_pct, fail_pct = float(warn_pct), float(fail_pct)
with open(baseline_path) as f:
    base = json.load(f)
with open(ref_path) as f:
    ref = json.load(f)
with open(current_path) as f:
    cur = json.load(f)

failures = []

# The JSON layout must agree before any field-by-field comparison.
for tag, run in (("reference", ref), ("current", cur)):
    if run.get("schema") != base.get("schema"):
        failures.append(
            f"{tag} schema {run.get('schema')} != baseline "
            f"{base.get('schema')} (regenerate bench/BENCH_SIM."
            "baseline.json with the current simbench)")

# Hard check: the simulated work is deterministic. Counts that drift
# mean the engine changed behavior, not just speed. Both runs must
# match the committed baseline exactly.
for tag, run in (("reference", ref), ("current", cur)):
    for name, b in base["workloads"].items():
        c = run["workloads"].get(name)
        if c is None:
            failures.append(f"workload '{name}' missing from {tag} run")
            continue
        for key in ("accesses", "launches", "threads"):
            if b[key] != c[key]:
                failures.append(
                    f"{tag} {name}.{key}: baseline {b[key]} != {c[key]} "
                    "(simulated work must be deterministic)")

# Soft gate: run-2 throughput relative to the run-1 on-box reference.
# Self-calibrating: the reference was recorded seconds ago on this very
# box, so the gate measures run-to-run stability, not how this machine
# compares to whoever recorded the committed baseline.
worst = 0.0
for key, r in ref["metrics"].items():
    c = cur["metrics"].get(key)
    if c is None:
        failures.append(f"metric '{key}' missing from current run")
        continue
    regression = 100.0 * (r - c) / r if r > 0 else 0.0
    worst = max(worst, regression)
    status = "ok"
    if regression > fail_pct:
        status = "FAIL"
        failures.append(
            f"{key}: {c:.3g} vs on-box reference {r:.3g} "
            f"({regression:.1f}% regression > {fail_pct}%)")
    elif regression > warn_pct:
        status = f"WARN (>{warn_pct}%)"
    print(f"  {key:32s} {c:12.4g}  ref {r:12.4g}  "
          f"{-regression:+6.1f}%  {status}")

# Informational only: where this box stands vs the committed baseline.
print("\n  vs committed baseline (informational, never fails):")
for key, b in base["metrics"].items():
    c = cur["metrics"].get(key)
    if c is None or b <= 0:
        continue
    delta = 100.0 * (c - b) / b
    print(f"  {key:32s} {c:12.4g}  base {b:12.4g}  {delta:+6.1f}%")

if failures:
    print("\nperf smoke FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"\nperf smoke passed (worst on-box regression {worst:.1f}%)")
EOF
